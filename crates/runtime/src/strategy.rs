//! The eight §III/§V consumer strategies on real OS threads.
//!
//! Each pair gets a producer thread that replays its trace against a
//! [`ReplayClock`] and a consumer thread implementing the strategy; PBPL
//! pairs additionally share a per-core [`NativeCoreManager`] thread and a
//! [`GlobalPool`]. Wakeups are counted at the blocking primitives (each
//! reported "this call blocked" is one thread sleep/wake cycle — the
//! PowerTop unit), usage via [`PairCounters::busy_timer`].

use crate::clock::ReplayClock;
use crate::counters::PairCounters;
use crate::manager::NativeCoreManager;
use parking_lot::{Condvar, Mutex};
use pc_core::resize::{plan_resize, predicted_fill, ResizePlan};
use pc_core::{select_slot, CostModel, PairId, PbplConfig, RatePredictor};
use pc_queues::elastic::Overflow;
use pc_queues::semqueue::SemQueueConsumer;
use pc_queues::{spsc_ring, ElasticBuffer, GlobalPool, MutexQueue, SemQueue, Semaphore};
use pc_sim::SimTime;
use pc_trace::Trace;
use pc_trace_events::{TraceEvent, TraceHandle, Trigger as TraceTrigger};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How long blocking consumers wait before re-checking the stop flag.
const STOP_POLL: Duration = Duration::from_millis(20);

/// Handle to one running pair (producer + consumer threads).
pub struct PairHandle {
    /// Shared counters for this pair.
    pub counters: Arc<PairCounters>,
    threads: Vec<JoinHandle<()>>,
    /// Wake hook used at shutdown (strategy-specific).
    waker: Option<Arc<Semaphore>>,
}

impl PairHandle {
    /// Joins the pair's threads (call after raising the stop flag).
    pub fn join(mut self) {
        if let Some(w) = self.waker.take() {
            w.release(1);
        }
        for t in self.threads.drain(..) {
            t.join().expect("strategy thread panicked");
        }
    }
}

/// Everything shared a pair needs at spawn time.
pub struct PairContext {
    /// Index of this pair.
    pub index: usize,
    /// The production timestamps to replay.
    pub trace: Trace,
    /// Replay pacing.
    pub clock: ReplayClock,
    /// Cooperative stop flag (set after the horizon elapses).
    pub stop: Arc<AtomicBool>,
    /// Base buffer capacity B₀.
    pub capacity: usize,
    /// PBPL only: this pair's core manager.
    pub manager: Option<Arc<NativeCoreManager>>,
    /// PBPL only: the shared global pool.
    pub pool: Option<Arc<GlobalPool>>,
    /// PBPL only: algorithm parameters.
    pub pbpl: Option<PbplConfig>,
    /// PBPL only: cost constants for ρ.
    pub cost: CostModel,
    /// Structured event-trace handle (disabled by default). Native
    /// emissions are stamped with replay-clock *sim* time, which is
    /// wall-derived — native traces support conservation checks, not
    /// bit-deterministic digests.
    pub trace_events: TraceHandle,
}

/// Emits one native trace event stamped with the replay clock's current
/// sim time.
fn emit(events: &TraceHandle, clock: &ReplayClock, make: impl FnOnce() -> TraceEvent) {
    events.record_at(clock.now_sim().as_nanos(), make);
}

fn spawn_producer<F>(
    trace: Trace,
    clock: ReplayClock,
    stop: Arc<AtomicBool>,
    counters: Arc<PairCounters>,
    events: TraceHandle,
    pair: u32,
    mut push: F,
) -> JoinHandle<()>
where
    F: FnMut(Instant) + Send + 'static,
{
    thread::spawn(move || {
        for &t in trace.times() {
            if !clock.sleep_until_sim_or_stop(t, &stop, Duration::from_millis(20)) {
                break;
            }
            push(Instant::now());
            counters.add_produced(1);
            emit(&events, &clock, || TraceEvent::Produce { pair });
        }
    })
}

/// Spawns the busy-wait (BW) or yielding (Yield) pair.
pub fn spawn_busy(ctx: PairContext, yielding: bool) -> PairHandle {
    let counters = Arc::new(PairCounters::new());
    // The ring here is plumbing, not the strategy's measured buffer: a
    // spinning consumer drains instantly, so the §III BW/Yield semantics
    // don't depend on B0. A roomy ring just keeps the producer's replay
    // timing honest.
    let (p, c) = spsc_ring::<Instant>(ctx.capacity.max(1024));
    let stop = Arc::clone(&ctx.stop);
    let producer = spawn_producer(
        ctx.trace,
        ctx.clock,
        Arc::clone(&stop),
        Arc::clone(&counters),
        ctx.trace_events.clone(),
        ctx.index as u32,
        move |at| {
            // Spin until space; the consumer spins too, so space appears fast.
            let mut v = at;
            while let Err(back) = p.push(v) {
                v = back;
                std::hint::spin_loop();
            }
        },
    );
    let ccount = Arc::clone(&counters);
    let cstop = Arc::clone(&stop);
    let cevents = ctx.trace_events.clone();
    let cclock = ctx.clock;
    let pair = ctx.index as u32;
    let consumer = thread::spawn(move || {
        let _busy = ccount.busy_timer(); // busy for its whole life
        loop {
            match c.pop() {
                Some(at) => {
                    ccount.add_consumed(1);
                    ccount.add_latency(at, Instant::now());
                    emit(&cevents, &cclock, || TraceEvent::Invoke {
                        pair,
                        trigger: TraceTrigger::Item,
                        batch: 1,
                        capacity: 0,
                    });
                }
                None => {
                    if cstop.load(Ordering::Relaxed) {
                        break;
                    }
                    if yielding {
                        thread::yield_now();
                    } else {
                        std::hint::spin_loop();
                    }
                }
            }
        }
    });
    PairHandle {
        counters,
        threads: vec![producer, consumer],
        waker: None,
    }
}

/// The session-draining consumer endpoint: both the Mutex and Sem queues
/// expose the same batched blocking surface
/// ([`MutexQueue::pop_timeout_drain`] /
/// [`SemQueueConsumer::pop_timeout_drain`]), so one consumer loop serves
/// both.
trait ItemEndpoint: Send + 'static {
    /// Blocks (up to `timeout`) for the first item, then drains the whole
    /// session into `out` in one synchronisation transaction. Returns
    /// `Some((count, blocked))` or `None` on timeout.
    fn pop_session(&self, timeout: Duration, out: &mut Vec<Instant>) -> Option<(usize, bool)>;
    fn is_empty(&self) -> bool;
}

impl ItemEndpoint for Arc<MutexQueue<Instant>> {
    fn pop_session(&self, timeout: Duration, out: &mut Vec<Instant>) -> Option<(usize, bool)> {
        MutexQueue::pop_timeout_drain(self, timeout, out)
    }
    fn is_empty(&self) -> bool {
        MutexQueue::is_empty(self)
    }
}

impl ItemEndpoint for SemQueueConsumer<Instant> {
    fn pop_session(&self, timeout: Duration, out: &mut Vec<Instant>) -> Option<(usize, bool)> {
        SemQueueConsumer::pop_timeout_drain(self, timeout, out)
    }
    fn is_empty(&self) -> bool {
        SemQueueConsumer::is_empty(self)
    }
}

/// The §III item-driven consumer loop: block for the first item of a
/// session (one thread wakeup), drain the rest of the session in the same
/// transaction, repeat. The batched drain replaces the old
/// pop-one-then-try-pop loop — one lock (or semaphore transaction) per
/// session instead of one per item, without changing the session
/// semantics the wakeup/invocation counters observe.
fn spawn_item_consumer<Q: ItemEndpoint>(
    queue: Q,
    counters: Arc<PairCounters>,
    stop: Arc<AtomicBool>,
    events: TraceHandle,
    clock: ReplayClock,
    pair: u32,
    capacity: usize,
) -> JoinHandle<()> {
    thread::spawn(move || {
        let mut session: Vec<Instant> = Vec::with_capacity(capacity);
        loop {
            session.clear();
            match queue.pop_session(STOP_POLL, &mut session) {
                Some((n, blocked)) => {
                    if blocked {
                        counters.add_wakeup();
                        counters.add_invocation(false, false);
                        emit(&events, &clock, || TraceEvent::Wakeup { pair });
                    }
                    let _busy = counters.busy_timer();
                    let now = Instant::now();
                    for &at in &session {
                        counters.add_consumed(1);
                        counters.add_latency(at, now);
                    }
                    emit(&events, &clock, || TraceEvent::Invoke {
                        pair,
                        trigger: TraceTrigger::Item,
                        batch: n as u64,
                        capacity: capacity as u64,
                    });
                }
                None => {
                    if stop.load(Ordering::Relaxed) && queue.is_empty() {
                        break;
                    }
                }
            }
        }
    })
}

/// Spawns the Mutex strategy pair (bounded queue, condvars, item at a
/// time).
pub fn spawn_mutex(ctx: PairContext) -> PairHandle {
    let counters = Arc::new(PairCounters::new());
    let q = Arc::new(MutexQueue::<Instant>::new(ctx.capacity));
    let qp = Arc::clone(&q);
    let producer = spawn_producer(
        ctx.trace,
        ctx.clock,
        Arc::clone(&ctx.stop),
        Arc::clone(&counters),
        ctx.trace_events.clone(),
        ctx.index as u32,
        move |at| {
            qp.push(at);
        },
    );
    let consumer = spawn_item_consumer(
        q,
        Arc::clone(&counters),
        Arc::clone(&ctx.stop),
        ctx.trace_events.clone(),
        ctx.clock,
        ctx.index as u32,
        ctx.capacity,
    );
    PairHandle {
        counters,
        threads: vec![producer, consumer],
        waker: None,
    }
}

/// Spawns the Sem strategy pair (two semaphores over a circular buffer).
pub fn spawn_sem(ctx: PairContext) -> PairHandle {
    let counters = Arc::new(PairCounters::new());
    let (qp, qc) = SemQueue::<Instant>::new(ctx.capacity);
    let producer = spawn_producer(
        ctx.trace,
        ctx.clock,
        Arc::clone(&ctx.stop),
        Arc::clone(&counters),
        ctx.trace_events.clone(),
        ctx.index as u32,
        move |at| {
            qp.push(at);
        },
    );
    let consumer = spawn_item_consumer(
        qc,
        Arc::clone(&counters),
        Arc::clone(&ctx.stop),
        ctx.trace_events.clone(),
        ctx.clock,
        ctx.index as u32,
        ctx.capacity,
    );
    PairHandle {
        counters,
        threads: vec![producer, consumer],
        waker: None,
    }
}

/// Shared buffer for the batching strategies: a mutex-guarded vector plus
/// a condvar the producer signals on "full" (BP) or "overflow"
/// (PBP/SPBP).
struct BatchBuffer {
    items: Mutex<Vec<Instant>>,
    signal: Condvar,
    capacity: usize,
}

impl BatchBuffer {
    fn new(capacity: usize) -> Self {
        BatchBuffer {
            items: Mutex::new(Vec::with_capacity(capacity)),
            signal: Condvar::new(),
            capacity,
        }
    }

    /// Pushes and reports whether the buffer is now at capacity.
    fn push(&self, at: Instant) -> bool {
        let mut items = self.items.lock();
        // The producer stalls while the consumer drains an overfull
        // buffer; with drain latencies in the microseconds this models
        // the paper's blocked producer without spinning.
        while items.len() >= self.capacity {
            drop(items);
            thread::yield_now();
            items = self.items.lock();
        }
        items.push(at);
        let full = items.len() >= self.capacity;
        drop(items);
        if full {
            self.signal.notify_one();
        }
        full
    }

    fn drain(&self, out: &mut Vec<Instant>) -> usize {
        let mut items = self.items.lock();
        let n = items.len();
        out.append(&mut items);
        n
    }
}

/// Spawns the BP pair: the consumer wakes only when the buffer fills.
pub fn spawn_bp(ctx: PairContext) -> PairHandle {
    let counters = Arc::new(PairCounters::new());
    let buf = Arc::new(BatchBuffer::new(ctx.capacity));
    let bp = Arc::clone(&buf);
    let producer = spawn_producer(
        ctx.trace,
        ctx.clock,
        Arc::clone(&ctx.stop),
        Arc::clone(&counters),
        ctx.trace_events.clone(),
        ctx.index as u32,
        move |at| {
            bp.push(at);
        },
    );
    let ccount = Arc::clone(&counters);
    let cstop = Arc::clone(&ctx.stop);
    let cevents = ctx.trace_events.clone();
    let cclock = ctx.clock;
    let pair = ctx.index as u32;
    let capacity = ctx.capacity as u64;
    let consumer = thread::spawn(move || {
        let mut batch = Vec::new();
        loop {
            {
                let mut items = buf.items.lock();
                while items.len() < buf.capacity {
                    if cstop.load(Ordering::Relaxed) {
                        break;
                    }
                    buf.signal.wait_for(&mut items, STOP_POLL);
                }
            }
            ccount.add_wakeup();
            emit(&cevents, &cclock, || TraceEvent::Wakeup { pair });
            batch.clear();
            let n = buf.drain(&mut batch);
            if n > 0 {
                ccount.add_invocation(false, true); // every BP wake = overflow
                emit(&cevents, &cclock, || TraceEvent::Invoke {
                    pair,
                    trigger: TraceTrigger::Overflow,
                    batch: n as u64,
                    capacity,
                });
                let _busy = ccount.busy_timer();
                let now = Instant::now();
                for &at in &batch {
                    ccount.add_consumed(1);
                    ccount.add_latency(at, now);
                }
            }
            if cstop.load(Ordering::Relaxed) && n == 0 {
                break;
            }
        }
    });
    PairHandle {
        counters,
        threads: vec![producer, consumer],
        waker: None,
    }
}

/// Spawns a periodic batching pair. `precise` selects SPBP (spin-finish
/// timer) versus PBP (plain OS sleep with its jitter).
pub fn spawn_periodic(ctx: PairContext, period: SimTime, precise: bool) -> PairHandle {
    let counters = Arc::new(PairCounters::new());
    let buf = Arc::new(BatchBuffer::new(ctx.capacity));
    let bp = Arc::clone(&buf);
    let producer = spawn_producer(
        ctx.trace,
        ctx.clock,
        Arc::clone(&ctx.stop),
        Arc::clone(&counters),
        ctx.trace_events.clone(),
        ctx.index as u32,
        move |at| {
            bp.push(at);
        },
    );
    let ccount = Arc::clone(&counters);
    let cstop = Arc::clone(&ctx.stop);
    let clock = ctx.clock;
    let cevents = ctx.trace_events.clone();
    let pair = ctx.index as u32;
    let capacity = ctx.capacity as u64;
    let consumer = thread::spawn(move || {
        let mut batch = Vec::new();
        let mut next = period;
        loop {
            let deadline = clock.wall_deadline(next);
            // Wait out the period, but let a producer "full" signal break
            // in early (overflow handling, §III-A).
            let overflowed = {
                let mut items = buf.items.lock();
                if items.len() < buf.capacity {
                    if precise {
                        // SPBP: condvar until shortly before the deadline,
                        // then spin for signal-class accuracy.
                        let early = deadline - Duration::from_micros(200);
                        buf.signal.wait_until(&mut items, early);
                        let full = items.len() >= buf.capacity;
                        drop(items);
                        if !full {
                            crate::clock::precise_sleep_until(deadline);
                        }
                        full
                    } else {
                        // PBP: plain timed wait; whatever jitter the OS
                        // adds is the experiment.
                        !buf.signal.wait_until(&mut items, deadline).timed_out()
                            && items.len() >= buf.capacity
                    }
                } else {
                    true
                }
            };
            ccount.add_wakeup();
            emit(&cevents, &clock, || TraceEvent::Wakeup { pair });
            batch.clear();
            let n = buf.drain(&mut batch);
            ccount.add_invocation(!overflowed, overflowed);
            emit(&cevents, &clock, || TraceEvent::Invoke {
                pair,
                trigger: if overflowed {
                    TraceTrigger::Overflow
                } else {
                    TraceTrigger::Scheduled
                },
                batch: n as u64,
                capacity,
            });
            if n > 0 {
                let _busy = ccount.busy_timer();
                let now = Instant::now();
                for &at in &batch {
                    ccount.add_consumed(1);
                    ccount.add_latency(at, now);
                }
            }
            if !overflowed {
                next += period - SimTime::ZERO;
            }
            // Catch up if we fell behind a whole period.
            while clock.now_sim() > next {
                next += period - SimTime::ZERO;
            }
            if cstop.load(Ordering::Relaxed) {
                // Final drain.
                batch.clear();
                let n = buf.drain(&mut batch);
                let now = Instant::now();
                for &at in &batch {
                    ccount.add_consumed(1);
                    ccount.add_latency(at, now);
                }
                if n > 0 {
                    emit(&cevents, &clock, || TraceEvent::Flush {
                        pair,
                        drained: n as u64,
                    });
                }
                break;
            }
        }
    });
    PairHandle {
        counters,
        threads: vec![producer, consumer],
        waker: None,
    }
}

/// Spawns a PBPL pair: elastic buffer against the shared pool, rate
/// prediction, ρ-driven slot reservation through the core manager.
pub fn spawn_pbpl(ctx: PairContext) -> PairHandle {
    let cfg = ctx.pbpl.clone().expect("PBPL context requires a config");
    let manager = ctx
        .manager
        .clone()
        .expect("PBPL context requires a manager");
    let pool = ctx.pool.clone().expect("PBPL context requires a pool");
    let counters = Arc::new(PairCounters::new());
    let min_cap =
        ((ctx.capacity as f64 * cfg.min_capacity_frac).ceil() as usize).clamp(1, ctx.capacity);
    let home = ctx.index % pool.shards();
    let buffer = Arc::new(Mutex::new(
        ElasticBuffer::<Instant>::with_min_at(pool, ctx.capacity, min_cap, home)
            .expect("pool covers base reservations"),
    ));
    let waker = Arc::new(Semaphore::new(0));
    let overflowed = Arc::new(AtomicBool::new(false));
    manager.register(ctx.index, Arc::clone(&waker));
    manager.register_buffer(ctx.index, Arc::clone(&buffer));

    let bp = Arc::clone(&buffer);
    let pw = Arc::clone(&waker);
    let pov = Arc::clone(&overflowed);
    let producer = spawn_producer(
        ctx.trace,
        ctx.clock,
        Arc::clone(&ctx.stop),
        Arc::clone(&counters),
        ctx.trace_events.clone(),
        ctx.index as u32,
        move |at| {
            let mut v = at;
            loop {
                let mut buf = bp.lock();
                match buf.push(v) {
                    Ok(()) => return,
                    Err(Overflow(back)) => {
                        v = back;
                        drop(buf);
                        // Unscheduled wakeup: the buffer is full before
                        // the reserved slot. Signal once per overflow
                        // episode — re-signalling on every retry would
                        // pile permits onto the semaphore and make the
                        // consumer spin through phantom wakeups.
                        if !pov.swap(true, Ordering::AcqRel) {
                            pw.release(1);
                        }
                        thread::yield_now();
                    }
                }
            }
        },
    );

    let ccount = Arc::clone(&counters);
    let cstop = Arc::clone(&ctx.stop);
    let cbuf = Arc::clone(&buffer);
    let cwaker = Arc::clone(&waker);
    let cov = Arc::clone(&overflowed);
    let cmgr = manager;
    let clock = ctx.clock;
    let cost = ctx.cost;
    let index = ctx.index;
    let base_capacity = ctx.capacity;
    let cevents = ctx.trace_events.clone();
    let consumer = thread::spawn(move || {
        let mut predictor: Box<dyn RatePredictor> = cfg.predictor.build(0.0);
        let mut last_invocation = SimTime::ZERO;
        let mut batch: Vec<Instant> = Vec::new();
        // Bootstrap reservation so the manager has something to arm.
        let now = clock.now_sim();
        let bootstrap = cmgr.with_book(index, |book| {
            select_slot(
                book.track(),
                book,
                &cost,
                now,
                0.0,
                base_capacity,
                cfg.max_latency,
                cfg.latching,
                Some(PairId(index)),
            )
        });
        cmgr.reserve(bootstrap.slot, index);

        loop {
            let woke = cwaker.acquire_timeout(STOP_POLL);
            let now = clock.now_sim();
            if woke.is_none() {
                if cstop.load(Ordering::Relaxed) {
                    // Final drain.
                    batch.clear();
                    let mut buf = cbuf.lock();
                    buf.drain_into(&mut batch);
                    drop(buf);
                    let t = Instant::now();
                    for &at in &batch {
                        ccount.add_consumed(1);
                        ccount.add_latency(at, t);
                    }
                    if !batch.is_empty() {
                        emit(&cevents, &clock, || TraceEvent::Flush {
                            pair: index as u32,
                            drained: batch.len() as u64,
                        });
                    }
                    return;
                }
                continue;
            }
            ccount.add_wakeup();
            emit(&cevents, &clock, || TraceEvent::Wakeup {
                pair: index as u32,
            });
            let was_overflow = cov.swap(false, Ordering::AcqRel);
            ccount.add_invocation(!was_overflow, was_overflow);
            let _busy = ccount.busy_timer();
            batch.clear();
            let capacity_now;
            {
                let mut buf = cbuf.lock();
                buf.drain_into(&mut batch);
                capacity_now = buf.capacity();
            }
            emit(&cevents, &clock, || TraceEvent::Invoke {
                pair: index as u32,
                trigger: if was_overflow {
                    TraceTrigger::Overflow
                } else {
                    TraceTrigger::Scheduled
                },
                batch: batch.len() as u64,
                capacity: capacity_now as u64,
            });
            let t = Instant::now();
            for &at in &batch {
                ccount.add_consumed(1);
                ccount.add_latency(at, t);
            }
            // Predict, select, resize, reserve — the §V-C consumer loop.
            let dt = now.saturating_since(last_invocation);
            last_invocation = now;
            predictor.observe(batch.len() as u64, dt);
            let rate = predictor.rate();
            let choice = cmgr.with_book(index, |book| {
                select_slot(
                    book.track(),
                    book,
                    &cost,
                    now,
                    rate,
                    capacity_now.max(base_capacity),
                    cfg.max_latency,
                    cfg.latching,
                    Some(PairId(index)),
                )
            });
            if cfg.resizing {
                let next_start =
                    cmgr.with_book(index, |book| book.track().slot_start(choice.slot + 1));
                let predicted = predicted_fill(rate, now, next_start);
                if predicted > 0.0 {
                    let mut buf = cbuf.lock();
                    match plan_resize(buf.capacity(), predicted, cfg.resize_margin) {
                        ResizePlan::Grow(target) => {
                            buf.grow_to(target);
                        }
                        // Never shrink right after an overflow — the
                        // prediction just proved too low (same rule as
                        // the simulator's pbpl_plan).
                        ResizePlan::Shrink(target) if !was_overflow => {
                            buf.shrink_to(target);
                        }
                        ResizePlan::Shrink(_) | ResizePlan::Keep => {}
                    }
                }
            }
            cmgr.reserve(choice.slot, index);
            if cstop.load(Ordering::Relaxed) {
                // Stop raised while we were being woken repeatedly: the
                // buffer was just drained; take any stragglers and exit
                // rather than waiting for a quiet 20ms window.
                batch.clear();
                cbuf.lock().drain_into(&mut batch);
                let t = Instant::now();
                for &at in &batch {
                    ccount.add_consumed(1);
                    ccount.add_latency(at, t);
                }
                if !batch.is_empty() {
                    emit(&cevents, &clock, || TraceEvent::Flush {
                        pair: index as u32,
                        drained: batch.len() as u64,
                    });
                }
                return;
            }
        }
    });

    PairHandle {
        counters,
        threads: vec![producer, consumer],
        waker: Some(waker),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_core::SlotTrack;
    use pc_power::PowerModel;
    use pc_sim::SimDuration;
    use pc_trace::WorldCupConfig;

    fn test_ctx(index: usize, horizon_ms: u64) -> (PairContext, Arc<AtomicBool>) {
        let cfg = WorldCupConfig {
            horizon: SimTime::from_millis(horizon_ms),
            mean_rate: 2_000.0,
            ..WorldCupConfig::quick_test()
        };
        let stop = Arc::new(AtomicBool::new(false));
        let ctx = PairContext {
            index,
            trace: cfg.generate(7 + index as u64),
            clock: ReplayClock::start(1.0),
            stop: Arc::clone(&stop),
            capacity: 25,
            manager: None,
            pool: None,
            pbpl: None,
            cost: CostModel::from_power_model(&PowerModel::exynos_like()),
            trace_events: TraceHandle::disabled(),
        };
        (ctx, stop)
    }

    fn run_pair(
        spawn: impl FnOnce(PairContext) -> PairHandle,
        horizon_ms: u64,
    ) -> crate::counters::PairStats {
        let (ctx, stop) = test_ctx(0, horizon_ms);
        let clock = ctx.clock;
        let handle = spawn(ctx);
        let counters = Arc::clone(&handle.counters);
        crate::clock::precise_sleep_until(
            clock.wall_deadline(SimTime::from_millis(horizon_ms + 30)),
        );
        stop.store(true, Ordering::SeqCst);
        handle.join();
        counters.snapshot()
    }

    #[test]
    fn mutex_pair_consumes_everything() {
        let s = run_pair(spawn_mutex, 150);
        assert!(s.items_produced > 0);
        assert_eq!(s.items_produced, s.items_consumed);
        assert!(s.wakeups > 0);
        assert!(
            s.wakeups < s.items_consumed,
            "bursts must coalesce: {} wakeups for {} items",
            s.wakeups,
            s.items_consumed
        );
    }

    #[test]
    fn sem_pair_consumes_everything() {
        let s = run_pair(spawn_sem, 150);
        assert_eq!(s.items_produced, s.items_consumed);
    }

    #[test]
    fn busy_wait_pair_zero_wakeups() {
        let s = run_pair(|ctx| spawn_busy(ctx, false), 100);
        assert_eq!(s.items_produced, s.items_consumed);
        assert_eq!(s.wakeups, 0);
        assert!(s.busy >= SimDuration::from_millis(80), "busy {}", s.busy);
    }

    #[test]
    fn bp_pair_batches_at_capacity() {
        let s = run_pair(spawn_bp, 200);
        assert_eq!(s.items_produced, s.items_consumed);
        assert!(s.overflows > 0, "BP wakes are overflows");
        // Mean batch ≈ capacity (final partial drain allowed).
        let mean_batch = s.items_consumed as f64 / s.invocations.max(1) as f64;
        assert!(mean_batch > 15.0, "mean batch {mean_batch}");
    }

    #[test]
    fn periodic_pair_scheduled_wakes() {
        let s = run_pair(
            |ctx| spawn_periodic(ctx, SimTime::from_millis(10), true),
            200,
        );
        assert_eq!(s.items_produced, s.items_consumed);
        assert!(s.scheduled > 0, "periodic fires must be scheduled");
    }

    #[test]
    fn pbpl_pair_end_to_end() {
        let clock = ReplayClock::start(1.0);
        let track = SlotTrack::new(SimDuration::from_millis(10));
        let manager = NativeCoreManager::new(track, clock);
        let mgr_thread = {
            let m = Arc::clone(&manager);
            thread::spawn(move || m.run())
        };
        let pool = GlobalPool::new(25 * 2);
        let (mut ctx, stop) = test_ctx(0, 200);
        ctx.clock = clock;
        ctx.manager = Some(Arc::clone(&manager));
        ctx.pool = Some(Arc::clone(&pool));
        ctx.pbpl = Some(PbplConfig {
            slot: SimDuration::from_millis(10),
            max_latency: SimDuration::from_millis(50),
            ..PbplConfig::default()
        });
        let handle = spawn_pbpl(ctx);
        let counters = Arc::clone(&handle.counters);
        crate::clock::precise_sleep_until(clock.wall_deadline(SimTime::from_millis(260)));
        stop.store(true, Ordering::SeqCst);
        handle.join();
        manager.shutdown();
        mgr_thread.join().unwrap();
        let s = counters.snapshot();
        assert!(s.items_produced > 0);
        assert_eq!(s.items_produced, s.items_consumed);
        assert!(s.scheduled > 0, "slot wakes must fire");
        assert!(
            s.invocations < s.items_consumed,
            "PBPL must batch: {} invocations for {} items",
            s.invocations,
            s.items_consumed
        );
        // Pool conservation after teardown: buffer dropped inside the
        // threads? The buffer lives in Arc<Mutex<..>> dropped with the
        // handle; by now all clones are gone.
        assert_eq!(pool.available(), pool.total());
    }
}

//! Dynamic buffer sizing decisions (§V-C "Dynamic buffer resizing").
//!
//! After reserving a slot the consumer *downsizes* its buffer "such that
//! it is only sufficient to accommodate the predicted items and not
//! more": Bᵢ = r̂ⱼ₊₁ · (τᵢⱼ₊₁ − τᵢⱼ). A consumer whose predicted rate
//! cannot be served by any slot *upsizes* "according to the space
//! available": Bᵢ = min(B_g − ΣB_q, r̂ⱼ₊₁·(τᵢⱼ₊₁ − τᵢⱼ)) — the pool
//! minimum is enforced by [`pc_queues::ElasticBuffer::grow_to`] itself.
//!
//! This module computes the *target* capacities; the elastic buffer
//! applies them against the pool.

use pc_sim::{SimDuration, SimTime};

/// Items predicted to accumulate between `now` and `slot_start` at rate
/// `rate` — the r̂·(τ_next − τ_now) term shared by both sizing formulas.
pub fn predicted_fill(rate: f64, now: SimTime, slot_start: SimTime) -> f64 {
    rate.max(0.0) * slot_start.saturating_since(now).as_secs_f64()
}

/// The capacity target for the interval to the reserved slot.
///
/// `margin` scales the prediction — 1.0 is the paper's exact formula,
/// larger values add slack against prediction error (an ablation knob).
/// The result is never below 1.
pub fn capacity_target(predicted_items: f64, margin: f64) -> usize {
    (predicted_items * margin.max(0.0)).ceil().max(1.0) as usize
}

/// Decides the resize action for a consumer that has just reserved a
/// slot: the target it should shrink or grow to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResizePlan {
    /// Shrink toward the target, releasing pool units.
    Shrink(usize),
    /// Grow toward the target, borrowing pool units (best-effort).
    Grow(usize),
    /// Capacity already matches the target.
    Keep,
}

/// Plans the resize from `current` capacity to fit `predicted_items` with
/// `margin`.
pub fn plan_resize(current: usize, predicted_items: f64, margin: f64) -> ResizePlan {
    let target = capacity_target(predicted_items, margin);
    use std::cmp::Ordering::*;
    match target.cmp(&current) {
        Less => ResizePlan::Shrink(target),
        Greater => ResizePlan::Grow(target),
        Equal => ResizePlan::Keep,
    }
}

/// Upsize target when the predicted rate overruns every acceptable slot
/// (the `rate_overrun` flag from slot selection): enough capacity to
/// survive until `slot_start` at the predicted rate, with margin.
pub fn overrun_target(rate: f64, now: SimTime, slot_start: SimTime, margin: f64) -> usize {
    capacity_target(predicted_fill(rate, now, slot_start), margin)
}

/// Duration a buffer of `capacity` items survives at `rate` items/second
/// (∞ is capped to the given `horizon`). Used in tests and diagnostics.
pub fn time_to_fill(capacity: usize, rate: f64, horizon: SimDuration) -> SimDuration {
    if rate <= 0.0 {
        return horizon;
    }
    SimDuration::from_secs_f64(capacity as f64 / rate).min(horizon)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn predicted_fill_matches_formula() {
        // 5000/s over 5ms = 25 items.
        assert!((predicted_fill(5000.0, ms(10), ms(15)) - 25.0).abs() < 1e-9);
        assert_eq!(predicted_fill(5000.0, ms(15), ms(10)), 0.0, "past slot");
        assert_eq!(predicted_fill(-10.0, ms(0), ms(10)), 0.0, "negative rate");
    }

    #[test]
    fn capacity_target_rounds_up_with_floor() {
        assert_eq!(capacity_target(24.2, 1.0), 25);
        assert_eq!(capacity_target(0.0, 1.0), 1);
        assert_eq!(capacity_target(10.0, 1.2), 12);
    }

    #[test]
    fn plan_directions() {
        assert_eq!(plan_resize(50, 25.0, 1.0), ResizePlan::Shrink(25));
        assert_eq!(plan_resize(20, 25.0, 1.0), ResizePlan::Grow(25));
        assert_eq!(plan_resize(25, 25.0, 1.0), ResizePlan::Keep);
    }

    #[test]
    fn overrun_target_covers_next_slot() {
        // 100k/s for 1ms = 100 items.
        assert_eq!(overrun_target(100_000.0, ms(10), ms(11), 1.0), 100);
        assert_eq!(overrun_target(100_000.0, ms(10), ms(11), 1.5), 150);
    }

    #[test]
    fn time_to_fill_basics() {
        let horizon = SimDuration::from_secs(1);
        assert_eq!(
            time_to_fill(25, 5000.0, horizon),
            SimDuration::from_millis(5)
        );
        assert_eq!(time_to_fill(25, 0.0, horizon), horizon);
        assert_eq!(time_to_fill(1_000_000, 1.0, horizon), horizon, "capped");
    }
}

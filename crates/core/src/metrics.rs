//! Per-run metric collection — every quantity §VI-B lists, plus latency.
//!
//! * Power (mW over baseline) and wakeups/s come from `pc-power`.
//! * *Upper-bound wakeups* — "the number of wakeups we estimate
//!   internally in the batch processing based implementations": here the
//!   per-pair split into scheduled / overflow / item-triggered
//!   invocations.
//! * *Average buffer size* — mean allocated capacity, sampled at every
//!   invocation (visible dynamic-resizing effect).
//! * *Number of buffer overflows.*

use crate::model::PairId;
use pc_power::{EnergyReport, MeterSample};
use pc_sim::core::CoreReport;
use pc_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Counters for one producer-consumer pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PairMetrics {
    /// Which pair.
    pub pair: PairId,
    /// Items the producer emitted.
    pub items_produced: u64,
    /// Items the consumer processed.
    pub items_consumed: u64,
    /// Total consumer invocations (the paper's kᵢ).
    pub invocations: u64,
    /// Invocations triggered by a scheduled timer/slot.
    pub scheduled_wakeups: u64,
    /// Invocations forced by a full buffer ("unscheduled wakeups").
    pub overflow_wakeups: u64,
    /// Invocations triggered by item arrival (Mutex/Sem style).
    pub item_wakeups: u64,
    /// Arrivals rejected by the admission controller (DESIGN.md §15).
    /// Always 0 with overload control disabled; shed items still count
    /// into `items_produced`, so conservation over a run is
    /// `items_produced == items_consumed + items_shed`.
    pub items_shed: u64,
    /// Overload windows this pair entered (admission trips, including
    /// supervisor escalations).
    pub overload_windows: u64,
    /// Consumed items whose response latency exceeded the overload
    /// deadline. Only counted while overload control is enabled (the
    /// deadline is undefined otherwise).
    pub deadline_misses: u64,
    /// Sum of item response latencies (production → consumption).
    pub total_latency: SimDuration,
    /// Worst single-item latency.
    pub max_latency: SimDuration,
    /// Σ buffer capacity sampled at each invocation (for the mean).
    pub capacity_sum: u64,
    /// Σ buffer occupancy at each drain (for the mean batch size).
    pub occupancy_sum: u64,
    /// Number of capacity/occupancy samples (= invocations that drained).
    pub samples: u64,
    /// Systematic sample of item latencies (nanoseconds) for percentile
    /// estimates: every k-th latency is kept, with k growing so the
    /// reservoir stays bounded.
    pub latency_sample_ns: Vec<u64>,
    /// Stride counter for the systematic sampler.
    latency_stride: u64,
    /// Items seen since the last kept sample.
    latency_since_kept: u64,
}

/// Upper bound on kept latency samples per pair.
const LATENCY_RESERVOIR: usize = 2048;

impl PairMetrics {
    /// Fresh counters for `pair`.
    pub fn new(pair: PairId) -> Self {
        PairMetrics {
            pair,
            items_produced: 0,
            items_consumed: 0,
            invocations: 0,
            scheduled_wakeups: 0,
            overflow_wakeups: 0,
            item_wakeups: 0,
            items_shed: 0,
            overload_windows: 0,
            deadline_misses: 0,
            total_latency: SimDuration::ZERO,
            max_latency: SimDuration::ZERO,
            capacity_sum: 0,
            occupancy_sum: 0,
            samples: 0,
            latency_sample_ns: Vec::new(),
            latency_stride: 1,
            latency_since_kept: 0,
        }
    }

    /// Records a drained batch: `n` items, buffer capacity at the time,
    /// and the per-item latencies folded in by the caller.
    pub fn record_drain(&mut self, n: u64, capacity: usize) {
        self.items_consumed += n;
        self.capacity_sum += capacity as u64;
        self.occupancy_sum += n;
        self.samples += 1;
    }

    /// Records one item's response latency.
    pub fn record_latency(&mut self, produced: SimTime, consumed: SimTime) {
        let lat = consumed.saturating_since(produced);
        self.total_latency += lat;
        self.max_latency = self.max_latency.max(lat);
        // Systematic sampling: keep every k-th latency, doubling k (and
        // thinning the reservoir) whenever it fills. Deterministic, so
        // runs stay bit-reproducible.
        self.latency_since_kept += 1;
        if self.latency_since_kept >= self.latency_stride {
            self.latency_since_kept = 0;
            self.latency_sample_ns.push(lat.as_nanos());
            if self.latency_sample_ns.len() >= LATENCY_RESERVOIR {
                // Drop every other sample and double the stride.
                let mut keep = false;
                self.latency_sample_ns.retain(|_| {
                    keep = !keep;
                    keep
                });
                self.latency_stride *= 2;
            }
        }
    }

    /// Mean item latency.
    pub fn mean_latency(&self) -> SimDuration {
        if self.items_consumed == 0 {
            SimDuration::ZERO
        } else {
            self.total_latency / self.items_consumed
        }
    }

    /// Mean buffer capacity over invocations ("average buffer size").
    pub fn mean_capacity(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.capacity_sum as f64 / self.samples as f64
        }
    }

    /// Approximate latency percentile (`p` in 0..=100) from the
    /// systematic sample. `None` when no latencies were recorded.
    pub fn latency_percentile(&self, p: f64) -> Option<SimDuration> {
        if self.latency_sample_ns.is_empty() {
            return None;
        }
        let mut sorted = self.latency_sample_ns.clone();
        sorted.sort_unstable();
        let rank = ((p.clamp(0.0, 100.0) / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        Some(SimDuration::from_nanos(sorted[rank]))
    }

    /// Mean items per drain (batch size).
    pub fn mean_batch(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.samples as f64
        }
    }
}

/// Everything measured in one experiment run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Display name of the strategy (paper figure label).
    pub strategy: String,
    /// Run length.
    pub duration: SimDuration,
    /// Per-pair counters.
    pub pairs: Vec<PairMetrics>,
    /// Finalised per-core activity records.
    pub core_reports: Vec<CoreReport>,
    /// Integrated energy.
    pub energy: EnergyReport,
    /// PowerTop-style aggregate (wakeups/s, usage ms/s).
    pub meter: MeterSample,
    /// Total items consumed across pairs.
    pub items_consumed: u64,
    /// Total items produced across pairs.
    pub items_produced: u64,
    /// Total arrivals shed by the admission controller (0 unless
    /// overload control is enabled; see DESIGN.md §15).
    pub items_shed: u64,
    /// PBPL only: slot deadlines the core managers actually dispatched
    /// (the paper's internally counted "upper bound" on scheduled CPU
    /// wakeups — one fire may serve a whole latch group). Zero for other
    /// strategies.
    pub slot_fires: u64,
    /// Deterministic event-scheduler operation counters (DESIGN.md §13).
    /// A pure function of `(seed, config)` like every other field here;
    /// exported to the `BENCH_*` sidecars so performance PRs can show
    /// op-count changes alongside host-dependent timings.
    pub scheduler: pc_sim::QueueStats,
}

impl RunMetrics {
    /// Core wakeups per second (the paper's primary proxy for power).
    pub fn wakeups_per_sec(&self) -> f64 {
        self.meter.wakeups_per_sec
    }

    /// CPU usage, ms/s (summed over cores, PowerTop-style).
    pub fn usage_ms_per_sec(&self) -> f64 {
        self.meter.usage_ms_per_sec
    }

    /// Extra power over the all-idle baseline, milliwatts.
    pub fn extra_power_mw(&self) -> f64 {
        self.energy.extra_power_mw()
    }

    /// Total scheduled wakeups across pairs (the §VI-C "upper bound").
    pub fn scheduled_wakeups(&self) -> u64 {
        self.pairs.iter().map(|p| p.scheduled_wakeups).sum()
    }

    /// Total buffer-overflow (unscheduled) wakeups across pairs.
    pub fn overflow_wakeups(&self) -> u64 {
        self.pairs.iter().map(|p| p.overflow_wakeups).sum()
    }

    /// Mean buffer capacity across pairs, weighted by samples.
    pub fn mean_capacity(&self) -> f64 {
        let (sum, n) = self.pairs.iter().fold((0u64, 0u64), |(s, n), p| {
            (s + p.capacity_sum, n + p.samples)
        });
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }

    /// Mean item latency across pairs.
    pub fn mean_latency(&self) -> SimDuration {
        let total: SimDuration = self.pairs.iter().map(|p| p.total_latency).sum();
        if self.items_consumed == 0 {
            SimDuration::ZERO
        } else {
            total / self.items_consumed
        }
    }

    /// Approximate latency percentile across all pairs (merged samples).
    pub fn latency_percentile(&self, p: f64) -> Option<SimDuration> {
        let mut merged: Vec<u64> = self
            .pairs
            .iter()
            .flat_map(|pair| pair.latency_sample_ns.iter().copied())
            .collect();
        if merged.is_empty() {
            return None;
        }
        merged.sort_unstable();
        let rank = ((p.clamp(0.0, 100.0) / 100.0) * (merged.len() - 1) as f64).round() as usize;
        Some(SimDuration::from_nanos(merged[rank]))
    }

    /// Worst item latency across pairs.
    pub fn max_latency(&self) -> SimDuration {
        self.pairs
            .iter()
            .map(|p| p.max_latency)
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Total deadline misses across pairs (overload runs only).
    pub fn deadline_misses(&self) -> u64 {
        self.pairs.iter().map(|p| p.deadline_misses).sum()
    }

    /// Sanity check: every produced item was consumed or ledgered as
    /// shed (the run drains buffers at the end; shed is 0 unless
    /// overload control is enabled).
    pub fn all_items_consumed(&self) -> bool {
        self.items_produced == self.items_consumed + self.items_shed
            && self
                .pairs
                .iter()
                .all(|p| p.items_produced == p.items_consumed + p.items_shed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_recording_accumulates() {
        let mut m = PairMetrics::new(PairId(0));
        m.record_drain(10, 25);
        m.record_drain(20, 50);
        assert_eq!(m.items_consumed, 30);
        assert_eq!(m.mean_capacity(), 37.5);
        assert_eq!(m.mean_batch(), 15.0);
    }

    #[test]
    fn latency_tracking() {
        let mut m = PairMetrics::new(PairId(0));
        m.record_latency(SimTime::from_micros(10), SimTime::from_micros(40));
        m.record_latency(SimTime::from_micros(20), SimTime::from_micros(30));
        m.items_consumed = 2;
        assert_eq!(m.mean_latency(), SimDuration::from_micros(20));
        assert_eq!(m.max_latency, SimDuration::from_micros(30));
    }

    #[test]
    fn empty_metrics_are_zero_not_nan() {
        let m = PairMetrics::new(PairId(3));
        assert_eq!(m.mean_latency(), SimDuration::ZERO);
        assert_eq!(m.mean_capacity(), 0.0);
        assert_eq!(m.mean_batch(), 0.0);
    }

    #[test]
    fn latency_percentiles_from_reservoir() {
        let mut m = PairMetrics::new(PairId(0));
        for k in 1..=1000u64 {
            m.record_latency(SimTime::ZERO, SimTime::from_micros(k));
        }
        m.items_consumed = 1000;
        let p50 = m.latency_percentile(50.0).unwrap();
        let p99 = m.latency_percentile(99.0).unwrap();
        assert!(
            p50 >= SimDuration::from_micros(400) && p50 <= SimDuration::from_micros(600),
            "p50 {p50}"
        );
        assert!(p99 >= SimDuration::from_micros(950), "p99 {p99}");
        assert!(p99 <= m.max_latency);
    }

    #[test]
    fn reservoir_stays_bounded() {
        let mut m = PairMetrics::new(PairId(0));
        for k in 0..100_000u64 {
            m.record_latency(SimTime::ZERO, SimTime::from_nanos(k));
        }
        assert!(m.latency_sample_ns.len() <= 2048);
        assert!(m.latency_percentile(50.0).is_some());
    }

    #[test]
    fn empty_percentile_is_none() {
        let m = PairMetrics::new(PairId(7));
        assert!(m.latency_percentile(99.0).is_none());
    }

    #[test]
    fn latency_clamps_negative() {
        let mut m = PairMetrics::new(PairId(0));
        // consumed before produced (cannot happen, but must not panic)
        m.record_latency(SimTime::from_micros(50), SimTime::from_micros(40));
        assert_eq!(m.total_latency, SimDuration::ZERO);
    }
}

//! Strategy and algorithm configuration.

use crate::predict::{Ewma, Holt, Kalman, MovingAverage, RatePredictor};
use pc_sim::{SimDuration, TimerModel};
use serde::{Deserialize, Serialize};

/// Which rate predictor a PBPL consumer runs (§V-C uses the moving
/// average; EWMA and Kalman are our ablations, the latter named by the
/// paper as future work).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PredictorKind {
    /// h-step moving average (the paper's estimator).
    MovingAverage {
        /// Window length h.
        history: usize,
    },
    /// Exponentially weighted moving average.
    Ewma {
        /// Smoothing factor in (0, 1].
        alpha: f64,
    },
    /// Scalar Kalman filter (process noise `q`, measurement noise `r`).
    Kalman {
        /// Process noise variance.
        q: f64,
        /// Measurement noise variance.
        r: f64,
    },
    /// Holt double-exponential smoothing (level `alpha`, trend `beta`) —
    /// extrapolates ramps instead of lagging them.
    Holt {
        /// Level smoothing factor in (0, 1].
        alpha: f64,
        /// Trend smoothing factor in (0, 1].
        beta: f64,
    },
}

impl PredictorKind {
    /// Instantiates the predictor with a prior rate estimate.
    pub fn build(&self, prior: f64) -> Box<dyn RatePredictor> {
        match *self {
            PredictorKind::MovingAverage { history } => {
                Box::new(MovingAverage::new(history, prior))
            }
            PredictorKind::Ewma { alpha } => Box::new(Ewma::new(alpha, prior)),
            PredictorKind::Kalman { q, r } => Box::new(Kalman::new(q, r, prior)),
            PredictorKind::Holt { alpha, beta } => Box::new(Holt::new(alpha, beta, prior)),
        }
    }
}

/// Graceful-degradation policy for PBPL under injected faults
/// (DESIGN.md §10). Default-off: with `enabled == false` every knob is
/// inert and PBPL behaves bit-identically to the vanilla algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradeConfig {
    /// Master switch; when false the watchdog never observes anything.
    pub enabled: bool,
    /// Consecutive overflow wakeups of one consumer that trip its
    /// prediction-error watchdog into degraded mode.
    pub overflow_threshold: u32,
    /// Multiplier applied to `resize_margin` while degraded (headroom
    /// against the rate the predictor is demonstrably underestimating).
    pub margin_boost: f64,
    /// Consecutive scheduled wakeups required to leave degraded mode.
    pub recovery_wakes: u32,
    /// Bounded retries of a pool-starved grow request before accepting
    /// the current (squeezed) capacity as the new target.
    pub grow_retries: u32,
}

impl Default for DegradeConfig {
    fn default() -> Self {
        DegradeConfig {
            enabled: false,
            overflow_threshold: 2,
            margin_boost: 1.75,
            recovery_wakes: 4,
            grow_retries: 3,
        }
    }
}

/// Deadline-aware overload-control policy (DESIGN.md §15): a per-pair
/// admission controller that sheds arrivals once the consumer's
/// measured service lag exceeds the deadline, plus a strategy-agnostic
/// fleet supervisor that kicks stuck pairs and escalates shedding
/// fleet-wide under correlated overload.
///
/// Default-off and inert by construction: with `enabled == false` the
/// simulation allocates no overload state, schedules no supervisor
/// ticks and takes identical branches to a build without the subsystem
/// — `results/suite.json`, `results/chaos.json`, `results/scale.json`
/// and the golden fixtures are byte-identical either way.
///
/// All admission arithmetic is integer nanoseconds/counts, so shed
/// decisions are bit-deterministic per seed. The admission test is
/// *measured*, not estimated: an arrival's service lag is how far `now`
/// trails the pair's service horizon (its consumer's busy spell or its
/// core's, whichever ends later) — an item admitted while the lag
/// already exceeds `deadline` cannot start service inside the deadline,
/// so admitting it only manufactures a guaranteed miss. Admission trips
/// when the lag exceeds `deadline` for `trip_arrivals` consecutive
/// arrivals, and clears when it falls below `clear_pct`% of the
/// deadline for `clear_arrivals` consecutive arrivals (the same
/// trip/restore hysteresis shape as [`DegradeConfig`]). Buffered-but-
/// unserved work that never occupies a core (a wedged consumer) is the
/// supervisor's job, not admission's: see `stuck_ticks`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverloadConfig {
    /// Master switch; when false every other knob is inert.
    pub enabled: bool,
    /// Response-latency deadline D an admitted item must still be able
    /// to meet.
    pub deadline: SimDuration,
    /// Consecutive over-deadline arrivals that trip a pair into
    /// overload.
    pub trip_arrivals: u32,
    /// Consecutive under-threshold arrivals that clear a pair's
    /// overload window.
    pub clear_arrivals: u32,
    /// Clear threshold as a percentage of the deadline (hysteresis gap:
    /// clearing requires the age estimate to drop well below the trip
    /// point, not merely back to it).
    pub clear_pct: u32,
    /// Fleet-supervisor tick period.
    pub supervisor_period: SimDuration,
    /// Supervisor ticks without consume progress (while items are
    /// buffered) after which a pair counts as stuck and gets an
    /// emergency drain.
    pub stuck_ticks: u32,
    /// Percentage of pairs simultaneously in overload that escalates
    /// shedding fleet-wide; de-escalation happens when the self-tripped
    /// share falls below half this.
    pub escalate_pct: u32,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            enabled: false,
            deadline: SimDuration::from_millis(100),
            trip_arrivals: 4,
            clear_arrivals: 8,
            clear_pct: 50,
            supervisor_period: SimDuration::from_millis(50),
            stuck_ticks: 2,
            escalate_pct: 50,
        }
    }
}

impl OverloadConfig {
    /// The canonical enabled configuration used by the overload sweep.
    /// Cells labelled `…(overload)` always run exactly this, which is
    /// what lets the replay tooling rebuild an overload cell from its
    /// strategy label alone (DESIGN.md §12, §15). The deadline sits at
    /// 50 ms: comfortably above the latency a *healthy* batching
    /// consumer accrues by design (PBPL holds items up to Δ = 25 ms per
    /// slot, so nominal service lag peaks around one slot), yet far
    /// below the unbounded busy-horizon lag a saturated core builds
    /// once a correlated surge outruns it. The 10 ms supervisor tick
    /// makes stuck detection react within a bench-length run.
    pub fn standard() -> Self {
        OverloadConfig {
            enabled: true,
            deadline: SimDuration::from_millis(50),
            supervisor_period: SimDuration::from_millis(10),
            ..OverloadConfig::default()
        }
    }
}

/// Configuration of the paper's algorithm (PBPL).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PbplConfig {
    /// Slot size Δ. The paper defaults this to the minimum of the
    /// consumers' maximum response latencies.
    pub slot: SimDuration,
    /// Each consumer's maximum acceptable response latency (bounds how
    /// far ahead it may reserve).
    pub max_latency: SimDuration,
    /// Rate predictor.
    pub predictor: PredictorKind,
    /// Group-latching on shared slots (§V-A). Disabling it degrades PBPL
    /// to per-consumer periodic batching — the key ablation.
    pub latching: bool,
    /// Opportunistic piggyback drains on an already-awake core — our
    /// reading of §V-A's "latch onto previously scheduled CPU wake-ups"
    /// extended to *any* wake (including overflow wakes). Disable to get
    /// the paper's literal reservation-only latching.
    pub piggyback: bool,
    /// Dynamic buffer resizing against the global pool (§V-C).
    pub resizing: bool,
    /// Margin multiplier on predicted fill when sizing buffers
    /// (1.0 = the paper's exact formula).
    pub resize_margin: f64,
    /// Fraction of B₀ below which downsizing never goes. Rate prediction
    /// is blind to sub-slot burst structure (request clusters), so a
    /// buffer shrunk to the *average* fill would overflow on every
    /// burst; the floor keeps one burst's worth of headroom. The paper's
    /// reported mean allocation (43 of 50) corresponds to ≈ 0.8.
    pub min_capacity_frac: f64,
    /// Graceful degradation under faults (off by default; see
    /// [`DegradeConfig`]).
    pub degrade: DegradeConfig,
}

impl Default for PbplConfig {
    fn default() -> Self {
        PbplConfig {
            slot: SimDuration::from_millis(25),
            max_latency: SimDuration::from_millis(100),
            predictor: PredictorKind::MovingAverage { history: 8 },
            latching: true,
            piggyback: true,
            resizing: true,
            resize_margin: 1.15,
            min_capacity_frac: 0.55,
            degrade: DegradeConfig::default(),
        }
    }
}

/// One of the producer-consumer implementations under study: the seven
/// from §III plus the paper's PBPL (§V).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StrategyKind {
    /// Busy-waiting consumer (BW).
    BusyWait,
    /// Busy-waiting with voluntary yields (Yield).
    Yield,
    /// Mutex + condition variables, item at a time (Mutex).
    Mutex,
    /// Two semaphores over a circular buffer, item at a time (Sem).
    Sem,
    /// Batch processing: wake when the buffer is full (BP).
    Bp,
    /// Periodic batch processing via `nanosleep` (PBP).
    Pbp {
        /// Batch period (the paper uses 100 µs in §III).
        period: SimDuration,
    },
    /// Signal-driven periodic batch processing (SPBP).
    Spbp {
        /// Batch period.
        period: SimDuration,
    },
    /// The paper's contribution: periodic batch processing with latching.
    Pbpl(PbplConfig),
}

impl StrategyKind {
    /// PBPL with default parameters.
    pub fn pbpl_default() -> Self {
        StrategyKind::Pbpl(PbplConfig::default())
    }

    /// PBPL with the graceful-degradation watchdog enabled (default
    /// thresholds); everything else identical to [`Self::pbpl_default`].
    pub fn pbpl_degraded() -> Self {
        StrategyKind::Pbpl(PbplConfig {
            degrade: DegradeConfig {
                enabled: true,
                ..DegradeConfig::default()
            },
            ..PbplConfig::default()
        })
    }

    /// The §III periodic strategies' timer models: PBP suffers
    /// `nanosleep` jitter, SPBP rides accurate signals, everything else
    /// is driven by data or slots.
    pub fn timer_model(&self) -> TimerModel {
        match self {
            StrategyKind::Pbp { .. } => TimerModel::nanosleep_like(),
            StrategyKind::Spbp { .. } => TimerModel::sigalrm_like(),
            // The PBPL core manager arms precise per-core timers
            // (hrtimer-class), same class as SPBP.
            StrategyKind::Pbpl(_) => TimerModel::sigalrm_like(),
            _ => TimerModel::Perfect,
        }
    }

    /// Short display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            StrategyKind::BusyWait => "BW",
            StrategyKind::Yield => "Yield",
            StrategyKind::Mutex => "Mutex",
            StrategyKind::Sem => "Sem",
            StrategyKind::Bp => "BP",
            StrategyKind::Pbp { .. } => "PBP",
            StrategyKind::Spbp { .. } => "SPBP",
            StrategyKind::Pbpl(_) => "PBPL",
        }
    }

    /// Whether this strategy consumes in batches (BP/PBP/SPBP/PBPL).
    pub fn is_batching(&self) -> bool {
        matches!(
            self,
            StrategyKind::Bp
                | StrategyKind::Pbp { .. }
                | StrategyKind::Spbp { .. }
                | StrategyKind::Pbpl(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictor_kinds_build() {
        for kind in [
            PredictorKind::MovingAverage { history: 4 },
            PredictorKind::Ewma { alpha: 0.4 },
            PredictorKind::Kalman { q: 1.0, r: 10.0 },
            PredictorKind::Holt {
                alpha: 0.5,
                beta: 0.2,
            },
        ] {
            let p = kind.build(500.0);
            assert_eq!(p.rate(), 500.0, "prior must flow through");
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(StrategyKind::BusyWait.name(), "BW");
        assert_eq!(StrategyKind::pbpl_default().name(), "PBPL");
        assert_eq!(
            StrategyKind::Pbp {
                period: SimDuration::from_micros(100)
            }
            .name(),
            "PBP"
        );
    }

    #[test]
    fn batching_classification() {
        assert!(!StrategyKind::Mutex.is_batching());
        assert!(!StrategyKind::Sem.is_batching());
        assert!(StrategyKind::Bp.is_batching());
        assert!(StrategyKind::pbpl_default().is_batching());
    }

    #[test]
    fn timer_models_differ_pbp_vs_spbp() {
        let pbp = StrategyKind::Pbp {
            period: SimDuration::from_micros(100),
        };
        let spbp = StrategyKind::Spbp {
            period: SimDuration::from_micros(100),
        };
        assert_ne!(pbp.timer_model(), spbp.timer_model());
        assert_eq!(StrategyKind::Mutex.timer_model(), TimerModel::Perfect);
    }

    #[test]
    fn default_config_sane() {
        let cfg = PbplConfig::default();
        assert!(cfg.latching && cfg.resizing);
        assert!(cfg.max_latency >= cfg.slot);
        assert!(!cfg.degrade.enabled, "degradation is opt-in");
    }

    #[test]
    fn overload_is_opt_in_and_standard_is_canonical() {
        let default = OverloadConfig::default();
        assert!(!default.enabled, "overload control is opt-in");
        let standard = OverloadConfig::standard();
        assert!(standard.enabled);
        // standard() is the single config behind every `…(overload)`
        // label, so the sweep-relevant thresholds are pinned here: a
        // silent change would invalidate recorded traces' replayability.
        assert_eq!(standard.deadline, SimDuration::from_millis(50));
        assert_eq!(standard.supervisor_period, SimDuration::from_millis(10));
        assert_eq!(standard.trip_arrivals, default.trip_arrivals);
        assert_eq!(standard.clear_arrivals, default.clear_arrivals);
        assert_eq!(standard.clear_pct, default.clear_pct);
        assert_eq!(standard.stuck_ticks, default.stuck_ticks);
        assert_eq!(standard.escalate_pct, default.escalate_pct);
        assert!(default.clear_pct < 100, "clear threshold below trip point");
        assert!(default.deadline > SimDuration::ZERO);
    }

    #[test]
    fn degraded_pbpl_differs_only_in_degrade_flag() {
        let (vanilla, degraded) = (StrategyKind::pbpl_default(), StrategyKind::pbpl_degraded());
        let (StrategyKind::Pbpl(v), StrategyKind::Pbpl(mut d)) = (vanilla, degraded) else {
            unreachable!()
        };
        assert!(d.degrade.enabled);
        d.degrade.enabled = false;
        assert_eq!(v, d);
    }
}

//! The reservation cost function ρ and slot selection (§V-C
//! "Reservation").
//!
//! Eq. 8:  ρ(sⱼ) = (w(sⱼ) + e(r̂·(sⱼ−sᵢ))) / (r̂·(sⱼ−sᵢ))
//!
//! where `w` is the wakeup cost (zero when the core is already scheduled
//! to be awake at sⱼ — that is what *latching* means) and `e(x)` is the
//! energy to process `x` items. ρ is cost *per item*, giving "consumers
//! perspective on the tradeoff between latching on a slot with a low
//! predicted number of items versus reserving a new slot with a high
//! predicted number of items".
//!
//! Selection backtracks from the predicted buffer-full slot
//! `g(sᵢ + B/r̂)` toward the present, stopping as soon as ρ stops
//! improving; the core manager's reservation index makes each backtrack
//! step O(log n) ([`crate::CoreManager::latest_reserved_in`]).

use crate::manager::ReservationBook;
use crate::model::ConsumerId;
use crate::slot::{SlotIndex, SlotTrack};
use pc_power::PowerModel;
use pc_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Energy constants entering ρ.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// ω — energy of one core wakeup, joules.
    pub wakeup_energy_j: f64,
    /// Energy to process one item, joules (e is linear: `e(x) = x·this`).
    pub item_energy_j: f64,
}

impl CostModel {
    /// Derives the cost constants from a platform power model.
    pub fn from_power_model(m: &PowerModel) -> Self {
        CostModel {
            wakeup_energy_j: m.wakeup_energy_j,
            item_energy_j: m.item_energy_j(1.0),
        }
    }

    /// Eq. 8 for a slot predicted to hold `items` items. `needs_wakeup`
    /// is false when the slot already has a reservation (the core will be
    /// awake — w = 0). Returns `+∞` for non-positive item counts: waking
    /// for nothing has unbounded per-item cost.
    pub fn rho(&self, needs_wakeup: bool, items: f64) -> f64 {
        if items <= 0.0 {
            return f64::INFINITY;
        }
        let w = if needs_wakeup {
            self.wakeup_energy_j
        } else {
            0.0
        };
        (w + self.item_energy_j * items) / items
    }
}

/// The outcome of slot selection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlotChoice {
    /// The chosen slot.
    pub slot: SlotIndex,
    /// Items predicted to be buffered when the slot fires.
    pub predicted_items: f64,
    /// Whether the choice latches onto an existing reservation.
    pub latched: bool,
    /// True when the predicted rate fills the buffer before even the
    /// next slot — the §V-C trigger for requesting more buffer space.
    pub rate_overrun: bool,
}

/// Selects the reservation slot for a consumer on `manager`'s core.
/// Generic over [`ReservationBook`], so it runs unchanged against a
/// single [`crate::CoreManager`] or a [`crate::ShardedCoreManager`].
///
/// ```
/// use pc_core::{select_slot, CoreManager, CostModel, PairId, SlotTrack};
/// use pc_sim::{SimDuration, SimTime};
///
/// let track = SlotTrack::new(SimDuration::from_millis(25));
/// let mut mgr = CoreManager::new(track);
/// let cost = CostModel { wakeup_energy_j: 120e-6, item_energy_j: 3.2e-6 };
/// // A neighbour already reserved slot 2; at 2000 items/s a 50-item
/// // buffer fills in 25ms, so slot 2 is on the way — latch onto it.
/// mgr.reserve(2, PairId(9));
/// let choice = select_slot(&track, &mgr, &cost, SimTime::from_millis(30),
///                          2_000.0, 50, SimDuration::from_millis(100), true,
///                          Some(PairId(0)));
/// assert_eq!(choice.slot, 2);
/// assert!(choice.latched);
/// ```
///
/// * `now` — current time (the invocation instant sᵢ).
/// * `rate` — predicted rate r̂ (items/second).
/// * `capacity` — current buffer capacity Bᵢ.
/// * `max_latency` — upper bound on how far ahead the consumer may sleep
///   (its maximum acceptable response latency).
/// * `latching` — when false (ablation), reservations by others are
///   ignored and every slot is costed with a full wakeup.
/// * `selecting` — the consumer doing the selection: its *own* pending
///   reservation is not a latch target (waking for yourself alone still
///   costs ω).
///
/// Note on the latency bound: wakeups only happen on slot boundaries, so
/// a `max_latency` smaller than the gap to the next slot still yields
/// the next slot — Δ is the floor on achievable latency (which is why
/// the paper derives Δ *from* the latency requirements).
#[allow(clippy::too_many_arguments)] // mirrors the paper's parameter list for Eq. 8
pub fn select_slot<B: ReservationBook + ?Sized>(
    track: &SlotTrack,
    manager: &B,
    cost: &CostModel,
    now: SimTime,
    rate: f64,
    capacity: usize,
    max_latency: SimDuration,
    latching: bool,
    selecting: Option<ConsumerId>,
) -> SlotChoice {
    let has_latch = |slot: SlotIndex| match selecting {
        Some(me) => manager.has_reservation_excluding(slot, me),
        None => manager.has_reservation(slot),
    };
    let latest_latch = |after: SlotIndex, upto: SlotIndex| match selecting {
        Some(me) => manager.latest_reserved_in_excluding(after, upto, me),
        None => manager.latest_reserved_in(after, upto),
    };
    let earliest = track.next_slot_after(now);
    let deadline_slot = track
        .slot_index(now.saturating_add(max_latency))
        .max(earliest);

    if rate <= 0.0 {
        // Nothing predicted: sleep as long as the latency bound allows
        // (an empty wakeup there will re-estimate), but grab a latch on
        // the way if one exists.
        let slot = if latching {
            latest_latch(earliest - 1, deadline_slot).unwrap_or(deadline_slot)
        } else {
            deadline_slot
        };
        return SlotChoice {
            slot,
            predicted_items: 0.0,
            latched: latching && has_latch(slot),
            rate_overrun: false,
        };
    }

    // Predicted buffer-full instant and its slot, g(sᵢ + B/r̂).
    let fill_at = now.saturating_add(SimDuration::from_secs_f64(capacity as f64 / rate));
    let fill_slot = track.slot_index(fill_at);
    let rate_overrun = fill_slot < earliest;
    let candidate = fill_slot.clamp(earliest, deadline_slot);

    let items_at = |slot: SlotIndex| -> f64 {
        rate * track.slot_start(slot).saturating_since(now).as_secs_f64()
    };

    let candidate_needs_wakeup = !(latching && has_latch(candidate));
    let mut best = SlotChoice {
        slot: candidate,
        predicted_items: items_at(candidate),
        latched: !candidate_needs_wakeup,
        rate_overrun,
    };
    let mut best_rho = cost.rho(candidate_needs_wakeup, best.predicted_items);

    if latching {
        // Backtrack across reserved slots only — unreserved slots earlier
        // than the candidate are dominated (same wakeup cost, fewer
        // items). Stop as soon as ρ stops improving.
        let mut upto = candidate.saturating_sub(1);
        while let Some(slot) = latest_latch(earliest.saturating_sub(1), upto) {
            let items = items_at(slot);
            let rho = cost.rho(false, items);
            if rho < best_rho {
                best = SlotChoice {
                    slot,
                    predicted_items: items,
                    latched: true,
                    rate_overrun,
                };
                best_rho = rho;
            } else {
                break;
            }
            if slot == 0 {
                break;
            }
            upto = slot - 1;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::CoreManager;
    use crate::model::PairId;

    fn setup() -> (SlotTrack, CoreManager, CostModel) {
        let track = SlotTrack::new(SimDuration::from_millis(1));
        let manager = CoreManager::new(track);
        let cost = CostModel {
            wakeup_energy_j: 120e-6,
            item_energy_j: 3.2e-6,
        };
        (track, manager, cost)
    }

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn rho_matches_equation() {
        let (_, _, cost) = setup();
        // (ω + e·x)/x with x = 10.
        let expected = (120e-6 + 3.2e-6 * 10.0) / 10.0;
        assert!((cost.rho(true, 10.0) - expected).abs() < 1e-18);
        // Latched slot: pure per-item energy.
        assert!((cost.rho(false, 10.0) - 3.2e-6).abs() < 1e-18);
    }

    #[test]
    fn rho_infinite_for_zero_items() {
        let (_, _, cost) = setup();
        assert!(cost.rho(true, 0.0).is_infinite());
        assert!(cost.rho(false, -1.0).is_infinite());
    }

    #[test]
    fn rho_decreases_with_items_when_waking() {
        let (_, _, cost) = setup();
        assert!(cost.rho(true, 1.0) > cost.rho(true, 10.0));
        assert!(cost.rho(true, 10.0) > cost.rho(true, 100.0));
    }

    #[test]
    fn no_reservations_picks_buffer_full_slot() {
        let (track, manager, cost) = setup();
        // rate 5000/s, capacity 25 → fills in 5ms → slot at t+5ms.
        let choice = select_slot(
            &track,
            &manager,
            &cost,
            ms(10),
            5_000.0,
            25,
            SimDuration::from_millis(50),
            true,
            None,
        );
        assert_eq!(choice.slot, track.slot_index(ms(15)));
        assert!(!choice.latched);
        assert!(!choice.rate_overrun);
        assert!((choice.predicted_items - 25.0).abs() < 1.0);
    }

    #[test]
    fn latches_to_reservation_before_fill_slot() {
        let (track, mut manager, cost) = setup();
        manager.reserve(track.slot_index(ms(13)), PairId(9));
        let choice = select_slot(
            &track,
            &manager,
            &cost,
            ms(10),
            5_000.0,
            25,
            SimDuration::from_millis(50),
            true,
            None,
        );
        assert_eq!(choice.slot, track.slot_index(ms(13)));
        assert!(choice.latched);
        // 3ms of buffering at 5000/s.
        assert!((choice.predicted_items - 15.0).abs() < 1.0);
    }

    #[test]
    fn prefers_latest_of_several_reservations() {
        let (track, mut manager, cost) = setup();
        manager.reserve(track.slot_index(ms(11)), PairId(7));
        manager.reserve(track.slot_index(ms(14)), PairId(8));
        let choice = select_slot(
            &track,
            &manager,
            &cost,
            ms(10),
            5_000.0,
            25,
            SimDuration::from_millis(50),
            true,
            None,
        );
        // Both latches cost e per item; the later one buffers more items
        // per invocation (the paper's buffer-utilization objective), and
        // the backtracking stop rule lands on it first.
        assert_eq!(choice.slot, track.slot_index(ms(14)));
        assert!(choice.latched);
    }

    #[test]
    fn latching_disabled_ignores_reservations() {
        let (track, mut manager, cost) = setup();
        manager.reserve(track.slot_index(ms(13)), PairId(9));
        let choice = select_slot(
            &track,
            &manager,
            &cost,
            ms(10),
            5_000.0,
            25,
            SimDuration::from_millis(50),
            false,
            None,
        );
        assert_eq!(choice.slot, track.slot_index(ms(15)));
        assert!(!choice.latched);
    }

    #[test]
    fn rate_overrun_flagged_and_clamped_to_next_slot() {
        let (track, manager, cost) = setup();
        // 100k/s with capacity 25 fills in 250us < Δ = 1ms.
        let choice = select_slot(
            &track,
            &manager,
            &cost,
            ms(10),
            100_000.0,
            25,
            SimDuration::from_millis(50),
            true,
            None,
        );
        assert!(choice.rate_overrun);
        assert_eq!(choice.slot, track.next_slot_after(ms(10)));
    }

    #[test]
    fn latency_bound_caps_sleep() {
        let (track, manager, cost) = setup();
        // 10 items/s with capacity 100 would fill in 10s; latency bound
        // is 5ms.
        let choice = select_slot(
            &track,
            &manager,
            &cost,
            ms(10),
            10.0,
            100,
            SimDuration::from_millis(5),
            true,
            None,
        );
        assert_eq!(choice.slot, track.slot_index(ms(15)));
    }

    #[test]
    fn zero_rate_sleeps_to_deadline() {
        let (track, manager, cost) = setup();
        let choice = select_slot(
            &track,
            &manager,
            &cost,
            ms(10),
            0.0,
            25,
            SimDuration::from_millis(8),
            true,
            None,
        );
        assert_eq!(choice.slot, track.slot_index(ms(18)));
        assert_eq!(choice.predicted_items, 0.0);
    }

    #[test]
    fn zero_rate_still_latches() {
        let (track, mut manager, cost) = setup();
        manager.reserve(track.slot_index(ms(12)), PairId(3));
        let choice = select_slot(
            &track,
            &manager,
            &cost,
            ms(10),
            0.0,
            25,
            SimDuration::from_millis(8),
            true,
            None,
        );
        assert_eq!(choice.slot, track.slot_index(ms(12)));
        assert!(choice.latched);
    }

    #[test]
    fn own_reservation_is_not_a_latch_target() {
        let (track, mut manager, cost) = setup();
        // Only MY old reservation sits before the fill slot: latching to
        // it would not save a wakeup, so the fill-based candidate wins.
        manager.reserve(track.slot_index(ms(13)), PairId(0));
        let choice = select_slot(
            &track,
            &manager,
            &cost,
            ms(10),
            5_000.0,
            25,
            SimDuration::from_millis(50),
            true,
            Some(PairId(0)),
        );
        assert_eq!(choice.slot, track.slot_index(ms(15)));
        assert!(!choice.latched);
        // But someone else's reservation at the same slot is a latch.
        manager.reserve(track.slot_index(ms(13)), PairId(1));
        let choice = select_slot(
            &track,
            &manager,
            &cost,
            ms(10),
            5_000.0,
            25,
            SimDuration::from_millis(50),
            true,
            Some(PairId(0)),
        );
        assert_eq!(choice.slot, track.slot_index(ms(13)));
        assert!(choice.latched);
    }

    #[test]
    fn choice_never_in_past_or_beyond_deadline() {
        let (track, mut manager, cost) = setup();
        manager.reserve(2, PairId(1)); // ancient reservation
        for rate in [0.0, 10.0, 1000.0, 1e6] {
            let now = ms(100);
            let choice = select_slot(
                &track,
                &manager,
                &cost,
                now,
                rate,
                25,
                SimDuration::from_millis(20),
                true,
                None,
            );
            assert!(track.slot_start(choice.slot) > now, "rate {rate}");
            assert!(
                track.slot_start(choice.slot) <= ms(120),
                "rate {rate}: slot {} too far",
                choice.slot
            );
        }
    }
}

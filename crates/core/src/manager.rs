//! The core manager (§V-B).
//!
//! One manager per core. It "accepts reservation requests for specific
//! slots made by the consumers", maintains the per-slot invocation lists,
//! supports deregistration, and — crucially for power — "will schedule
//! the next slot with at least one reservation, thus ensuring that the
//! CPU is not activated needlessly".
//!
//! The manager also provides the *backtracking helper* the consumer's
//! slot selection leans on: "using a helper function in the core manager
//! that backtracks to the next slot with reservations, the backtracking
//! process only consumes one iteration" — here
//! [`CoreManager::latest_reserved_in`].
//!
//! Memory stays bounded exactly as the paper argues: "future reservations
//! are limited to only the next invocation of every consumer", so the map
//! holds at most one entry per consumer hosted on the core.

use crate::model::ConsumerId;
use crate::slot::{SlotIndex, SlotTrack};
use pc_trace_events::{TraceEvent, TraceHandle};
use std::collections::BTreeMap;

/// Slot reservation book-keeping for one core.
///
/// ```
/// use pc_core::{CoreManager, PairId, SlotTrack};
/// use pc_sim::SimDuration;
///
/// let mut mgr = CoreManager::new(SlotTrack::new(SimDuration::from_millis(25)));
/// mgr.reserve(4, PairId(0));
/// mgr.reserve(4, PairId(1));           // latches onto the same slot
/// assert_eq!(mgr.first_reserved(), Some(4));
/// let group = mgr.take_due(4);         // one wakeup serves both
/// assert_eq!(group.len(), 2);
/// assert_eq!(mgr.scheduled_wakeups(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct CoreManager {
    track: SlotTrack,
    /// slot index → consumers to invoke at that slot.
    reservations: BTreeMap<SlotIndex, Vec<ConsumerId>>,
    /// Where each consumer currently holds its (single) reservation.
    held: BTreeMap<ConsumerId, SlotIndex>,
    /// Total wakeups this manager has scheduled (slots dispatched).
    scheduled_wakeups: u64,
    /// Event-trace handle (disabled by default) and the core index used
    /// to tag emitted `Slot*` events.
    trace: TraceHandle,
    core_tag: u32,
}

impl CoreManager {
    /// A manager over the given slot track with no reservations.
    pub fn new(track: SlotTrack) -> Self {
        CoreManager {
            track,
            reservations: BTreeMap::new(),
            held: BTreeMap::new(),
            scheduled_wakeups: 0,
            trace: TraceHandle::disabled(),
            core_tag: 0,
        }
    }

    /// Attaches an event-trace handle, tagging this manager's
    /// reservation traffic with `core` (the core index it manages).
    pub fn set_trace(&mut self, trace: TraceHandle, core: u32) {
        self.trace = trace;
        self.core_tag = core;
    }

    /// The slot track this manager schedules on.
    pub fn track(&self) -> &SlotTrack {
        &self.track
    }

    /// Reserves `slot` for `consumer`, replacing the consumer's previous
    /// reservation if any (each consumer holds at most one — its next
    /// invocation).
    pub fn reserve(&mut self, slot: SlotIndex, consumer: ConsumerId) {
        let prev = self.held.insert(consumer, slot);
        if let Some(old) = prev {
            if old == slot {
                return;
            }
            self.remove_from_slot(old, consumer);
        }
        self.reservations.entry(slot).or_default().push(consumer);
        self.trace.record(|| TraceEvent::SlotReserve {
            core: self.core_tag,
            consumer: consumer.0 as u32,
            slot,
            prev,
        });
    }

    /// Drops `consumer`'s reservation, if it holds one. Returns the slot
    /// it held.
    pub fn deregister(&mut self, consumer: ConsumerId) -> Option<SlotIndex> {
        let slot = self.held.remove(&consumer)?;
        self.remove_from_slot(slot, consumer);
        self.trace.record(|| TraceEvent::SlotRelease {
            core: self.core_tag,
            consumer: consumer.0 as u32,
            slot,
        });
        Some(slot)
    }

    fn remove_from_slot(&mut self, slot: SlotIndex, consumer: ConsumerId) {
        if let Some(list) = self.reservations.get_mut(&slot) {
            list.retain(|&c| c != consumer);
            if list.is_empty() {
                self.reservations.remove(&slot);
            }
        }
    }

    /// The consumer's current reservation, if any.
    pub fn reservation_of(&self, consumer: ConsumerId) -> Option<SlotIndex> {
        self.held.get(&consumer).copied()
    }

    /// Whether any consumer is registered for `slot`.
    pub fn has_reservation(&self, slot: SlotIndex) -> bool {
        self.reservations.contains_key(&slot)
    }

    /// Whether any consumer *other than* `except` is registered for
    /// `slot`. This is the latch test: a consumer's own reservation does
    /// not make its wakeup free.
    pub fn has_reservation_excluding(&self, slot: SlotIndex, except: ConsumerId) -> bool {
        self.reservations
            .get(&slot)
            .map(|l| l.iter().any(|&c| c != except))
            .unwrap_or(false)
    }

    /// The earliest reserved slot — what the manager arms its next
    /// wakeup for.
    pub fn first_reserved(&self) -> Option<SlotIndex> {
        self.reservations.keys().next().copied()
    }

    /// The earliest reserved slot at or after `slot`.
    pub fn next_reserved_at_or_after(&self, slot: SlotIndex) -> Option<SlotIndex> {
        self.reservations.range(slot..).next().map(|(&s, _)| s)
    }

    /// The backtracking helper (§V-C): the *latest* reserved slot in
    /// `(after, upto]`, i.e. the first latching opportunity encountered
    /// when walking backwards from `upto`.
    pub fn latest_reserved_in(&self, after: SlotIndex, upto: SlotIndex) -> Option<SlotIndex> {
        if upto <= after {
            return None;
        }
        self.reservations
            .range(after + 1..=upto)
            .next_back()
            .map(|(&s, _)| s)
    }

    /// [`CoreManager::latest_reserved_in`] skipping slots whose only
    /// reservee is `except` (no latch value in one's own reservation).
    pub fn latest_reserved_in_excluding(
        &self,
        after: SlotIndex,
        upto: SlotIndex,
        except: ConsumerId,
    ) -> Option<SlotIndex> {
        if upto <= after {
            return None;
        }
        self.reservations
            .range(after + 1..=upto)
            .rev()
            .find(|(_, l)| l.iter().any(|&c| c != except))
            .map(|(&s, _)| s)
    }

    /// Removes and returns the consumers registered for `slot`, counting
    /// one scheduled wakeup if any were present.
    pub fn take_due(&mut self, slot: SlotIndex) -> Vec<ConsumerId> {
        match self.reservations.remove(&slot) {
            Some(list) => {
                for c in &list {
                    self.held.remove(c);
                }
                self.scheduled_wakeups += 1;
                self.trace.record(|| TraceEvent::SlotDispatch {
                    core: self.core_tag,
                    slot,
                    consumers: list.iter().map(|c| c.0 as u32).collect(),
                });
                list
            }
            None => Vec::new(),
        }
    }

    /// How many consumers are registered for `slot`.
    pub fn take_count_at(&self, slot: SlotIndex) -> usize {
        self.reservations.get(&slot).map(|l| l.len()).unwrap_or(0)
    }

    /// Number of slot wakeups dispatched so far.
    pub fn scheduled_wakeups(&self) -> u64 {
        self.scheduled_wakeups
    }

    /// Number of live reservations (consumers with a pending slot).
    pub fn pending(&self) -> usize {
        self.held.len()
    }
}

/// The read-only reservation queries slot selection needs (§V-C).
///
/// [`crate::cost::select_slot`] is generic over this trait so the same
/// backtracking search runs against a single [`CoreManager`] or a
/// [`ShardedCoreManager`] — the latter answers each query over the
/// union of its shards' books.
pub trait ReservationBook {
    /// Whether any consumer is registered for `slot`.
    fn has_reservation(&self, slot: SlotIndex) -> bool;
    /// Whether any consumer other than `except` is registered for
    /// `slot`.
    fn has_reservation_excluding(&self, slot: SlotIndex, except: ConsumerId) -> bool;
    /// The latest reserved slot in `(after, upto]`.
    fn latest_reserved_in(&self, after: SlotIndex, upto: SlotIndex) -> Option<SlotIndex>;
    /// [`ReservationBook::latest_reserved_in`] skipping slots whose only
    /// reservee is `except`.
    fn latest_reserved_in_excluding(
        &self,
        after: SlotIndex,
        upto: SlotIndex,
        except: ConsumerId,
    ) -> Option<SlotIndex>;
}

impl ReservationBook for CoreManager {
    fn has_reservation(&self, slot: SlotIndex) -> bool {
        CoreManager::has_reservation(self, slot)
    }
    fn has_reservation_excluding(&self, slot: SlotIndex, except: ConsumerId) -> bool {
        CoreManager::has_reservation_excluding(self, slot, except)
    }
    fn latest_reserved_in(&self, after: SlotIndex, upto: SlotIndex) -> Option<SlotIndex> {
        CoreManager::latest_reserved_in(self, after, upto)
    }
    fn latest_reserved_in_excluding(
        &self,
        after: SlotIndex,
        upto: SlotIndex,
        except: ConsumerId,
    ) -> Option<SlotIndex> {
        CoreManager::latest_reserved_in_excluding(self, after, upto, except)
    }
}

/// A core manager split into `S` independent shards (DESIGN.md §11).
///
/// Consumers hash to shards by `PairId` (`consumer mod S`), so at large
/// M the mutation-heavy book-keeping — reserve, deregister, dispatch
/// removal — touches only one shard's maps. The wrapper preserves the
/// *exact* semantics of a single [`CoreManager`]:
///
/// * **Queries** aggregate over the union of the shards' books (min for
///   "earliest", max for "latest", any/sum for the rest), so latching
///   still sees every reservation on the core.
/// * **Dispatch** ([`ShardedCoreManager::take_due`]) walks the shards
///   round-robin, steals each shard's due list, and merges them back
///   into global reservation order using per-reservation sequence
///   stamps — byte-for-byte the FIFO order a single manager would have
///   produced. This merge is the deterministic cross-shard
///   work-stealing pass: one wakeup serves every shard's due work.
/// * **Events and counters** live on the wrapper (inner shards trace
///   nothing), so `Slot*` event streams and `scheduled_wakeups` are
///   identical for any shard count — the determinism gate relies on
///   this.
///
/// With `S = 1` this is a thin wrapper over one [`CoreManager`].
#[derive(Debug, Clone)]
pub struct ShardedCoreManager {
    track: SlotTrack,
    shards: Vec<CoreManager>,
    /// Global arrival stamp per live reservation; assigns merge order
    /// across shards. Idempotent same-slot re-reservations keep their
    /// stamp, exactly as a single manager keeps the consumer's position
    /// in the slot's FIFO list.
    stamps: BTreeMap<ConsumerId, u64>,
    next_stamp: u64,
    scheduled_wakeups: u64,
    trace: TraceHandle,
    core_tag: u32,
}

impl ShardedCoreManager {
    /// A manager over `track` with `shards ≥ 1` internal shards.
    pub fn new(track: SlotTrack, shards: usize) -> Self {
        assert!(shards >= 1, "core manager needs at least one shard");
        ShardedCoreManager {
            track,
            shards: (0..shards).map(|_| CoreManager::new(track)).collect(),
            stamps: BTreeMap::new(),
            next_stamp: 0,
            scheduled_wakeups: 0,
            trace: TraceHandle::disabled(),
            core_tag: 0,
        }
    }

    /// Attaches an event-trace handle to the *wrapper* (inner shards
    /// stay silent), tagging emitted `Slot*` events with `core`.
    pub fn set_trace(&mut self, trace: TraceHandle, core: u32) {
        self.trace = trace;
        self.core_tag = core;
    }

    /// The slot track this manager schedules on.
    pub fn track(&self) -> &SlotTrack {
        &self.track
    }

    /// Number of internal shards (`S`).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, consumer: ConsumerId) -> usize {
        consumer.0 % self.shards.len()
    }

    /// Reserves `slot` for `consumer` on its home shard, replacing the
    /// consumer's previous reservation if any. Same-slot re-reservation
    /// is a silent no-op (no event, stamp unchanged), matching
    /// [`CoreManager::reserve`].
    pub fn reserve(&mut self, slot: SlotIndex, consumer: ConsumerId) {
        let shard = self.shard_of(consumer);
        let prev = self.shards[shard].reservation_of(consumer);
        if prev == Some(slot) {
            return;
        }
        self.shards[shard].reserve(slot, consumer);
        self.stamps.insert(consumer, self.next_stamp);
        self.next_stamp += 1;
        self.trace.record(|| TraceEvent::SlotReserve {
            core: self.core_tag,
            consumer: consumer.0 as u32,
            slot,
            prev,
        });
    }

    /// Drops `consumer`'s reservation, if it holds one. Returns the
    /// slot it held.
    pub fn deregister(&mut self, consumer: ConsumerId) -> Option<SlotIndex> {
        let shard = self.shard_of(consumer);
        let slot = self.shards[shard].deregister(consumer)?;
        self.stamps.remove(&consumer);
        self.trace.record(|| TraceEvent::SlotRelease {
            core: self.core_tag,
            consumer: consumer.0 as u32,
            slot,
        });
        Some(slot)
    }

    /// The consumer's current reservation, if any.
    pub fn reservation_of(&self, consumer: ConsumerId) -> Option<SlotIndex> {
        self.shards[self.shard_of(consumer)].reservation_of(consumer)
    }

    /// Whether any consumer on any shard is registered for `slot`.
    pub fn has_reservation(&self, slot: SlotIndex) -> bool {
        self.shards.iter().any(|s| s.has_reservation(slot))
    }

    /// Whether any consumer other than `except` is registered for
    /// `slot`, across all shards.
    pub fn has_reservation_excluding(&self, slot: SlotIndex, except: ConsumerId) -> bool {
        self.shards
            .iter()
            .any(|s| s.has_reservation_excluding(slot, except))
    }

    /// The earliest reserved slot across all shards.
    pub fn first_reserved(&self) -> Option<SlotIndex> {
        self.shards.iter().filter_map(|s| s.first_reserved()).min()
    }

    /// The earliest reserved slot at or after `slot`, across all shards.
    pub fn next_reserved_at_or_after(&self, slot: SlotIndex) -> Option<SlotIndex> {
        self.shards
            .iter()
            .filter_map(|s| s.next_reserved_at_or_after(slot))
            .min()
    }

    /// The latest reserved slot in `(after, upto]`, across all shards.
    pub fn latest_reserved_in(&self, after: SlotIndex, upto: SlotIndex) -> Option<SlotIndex> {
        self.shards
            .iter()
            .filter_map(|s| s.latest_reserved_in(after, upto))
            .max()
    }

    /// [`ShardedCoreManager::latest_reserved_in`] skipping slots whose
    /// only reservee is `except`.
    pub fn latest_reserved_in_excluding(
        &self,
        after: SlotIndex,
        upto: SlotIndex,
        except: ConsumerId,
    ) -> Option<SlotIndex> {
        self.shards
            .iter()
            .filter_map(|s| s.latest_reserved_in_excluding(after, upto, except))
            .max()
    }

    /// Removes and returns the consumers registered for `slot` on every
    /// shard (round-robin steal), merged back into global reservation
    /// order via the sequence stamps; counts one scheduled wakeup if
    /// any were present.
    pub fn take_due(&mut self, slot: SlotIndex) -> Vec<ConsumerId> {
        let mut due: Vec<(u64, ConsumerId)> = Vec::new();
        for shard in &mut self.shards {
            for c in shard.take_due(slot) {
                let stamp = self
                    .stamps
                    .remove(&c)
                    .expect("every live reservation is stamped");
                due.push((stamp, c));
            }
        }
        if due.is_empty() {
            return Vec::new();
        }
        due.sort_unstable_by_key(|&(stamp, _)| stamp);
        let list: Vec<ConsumerId> = due.into_iter().map(|(_, c)| c).collect();
        self.scheduled_wakeups += 1;
        self.trace.record(|| TraceEvent::SlotDispatch {
            core: self.core_tag,
            slot,
            consumers: list.iter().map(|c| c.0 as u32).collect(),
        });
        list
    }

    /// How many consumers are registered for `slot`, across all shards.
    pub fn take_count_at(&self, slot: SlotIndex) -> usize {
        self.shards.iter().map(|s| s.take_count_at(slot)).sum()
    }

    /// Number of slot wakeups dispatched so far (wrapper counter; the
    /// inner shards' own counters are not exposed).
    pub fn scheduled_wakeups(&self) -> u64 {
        self.scheduled_wakeups
    }

    /// Number of live reservations across all shards.
    pub fn pending(&self) -> usize {
        self.shards.iter().map(|s| s.pending()).sum()
    }
}

impl ReservationBook for ShardedCoreManager {
    fn has_reservation(&self, slot: SlotIndex) -> bool {
        ShardedCoreManager::has_reservation(self, slot)
    }
    fn has_reservation_excluding(&self, slot: SlotIndex, except: ConsumerId) -> bool {
        ShardedCoreManager::has_reservation_excluding(self, slot, except)
    }
    fn latest_reserved_in(&self, after: SlotIndex, upto: SlotIndex) -> Option<SlotIndex> {
        ShardedCoreManager::latest_reserved_in(self, after, upto)
    }
    fn latest_reserved_in_excluding(
        &self,
        after: SlotIndex,
        upto: SlotIndex,
        except: ConsumerId,
    ) -> Option<SlotIndex> {
        ShardedCoreManager::latest_reserved_in_excluding(self, after, upto, except)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PairId;
    use pc_sim::SimDuration;

    fn mgr() -> CoreManager {
        CoreManager::new(SlotTrack::new(SimDuration::from_millis(1)))
    }

    #[test]
    fn reserve_and_take() {
        let mut m = mgr();
        m.reserve(5, PairId(0));
        m.reserve(5, PairId(1));
        m.reserve(7, PairId(2));
        assert!(m.has_reservation(5));
        assert_eq!(m.first_reserved(), Some(5));
        let due = m.take_due(5);
        assert_eq!(due, vec![PairId(0), PairId(1)]);
        assert_eq!(m.first_reserved(), Some(7));
        assert_eq!(m.scheduled_wakeups(), 1);
    }

    #[test]
    fn take_empty_slot_is_free() {
        let mut m = mgr();
        assert!(m.take_due(3).is_empty());
        assert_eq!(m.scheduled_wakeups(), 0);
    }

    #[test]
    fn rereservation_moves_consumer() {
        let mut m = mgr();
        m.reserve(5, PairId(0));
        m.reserve(9, PairId(0));
        assert!(!m.has_reservation(5), "old slot must be vacated");
        assert_eq!(m.reservation_of(PairId(0)), Some(9));
        assert_eq!(m.pending(), 1);
    }

    #[test]
    fn rereserving_same_slot_is_idempotent() {
        let mut m = mgr();
        m.reserve(5, PairId(0));
        m.reserve(5, PairId(0));
        assert_eq!(m.take_due(5), vec![PairId(0)]);
    }

    #[test]
    fn deregister_clears() {
        let mut m = mgr();
        m.reserve(4, PairId(1));
        assert_eq!(m.deregister(PairId(1)), Some(4));
        assert!(!m.has_reservation(4));
        assert_eq!(m.deregister(PairId(1)), None);
    }

    #[test]
    fn next_reserved_at_or_after_scans_forward() {
        let mut m = mgr();
        m.reserve(10, PairId(0));
        m.reserve(20, PairId(1));
        assert_eq!(m.next_reserved_at_or_after(0), Some(10));
        assert_eq!(m.next_reserved_at_or_after(10), Some(10));
        assert_eq!(m.next_reserved_at_or_after(11), Some(20));
        assert_eq!(m.next_reserved_at_or_after(21), None);
    }

    #[test]
    fn latest_reserved_in_backtracks() {
        let mut m = mgr();
        m.reserve(10, PairId(0));
        m.reserve(14, PairId(1));
        m.reserve(30, PairId(2));
        // Walking back from slot 20: the first reserved slot met is 14.
        assert_eq!(m.latest_reserved_in(5, 20), Some(14));
        // Bounds are (after, upto]: slot 10 excluded when after = 10.
        assert_eq!(m.latest_reserved_in(10, 13), None);
        assert_eq!(m.latest_reserved_in(10, 14), Some(14));
        assert_eq!(m.latest_reserved_in(20, 20), None);
        assert_eq!(m.latest_reserved_in(20, 19), None, "empty range");
    }

    #[test]
    fn per_slot_fifo_order_preserved() {
        let mut m = mgr();
        for k in 0..5 {
            m.reserve(3, PairId(k));
        }
        assert_eq!(
            m.take_due(3),
            (0..5).map(PairId).collect::<Vec<_>>(),
            "consumers dispatch in reservation order"
        );
    }

    #[test]
    fn exclusion_queries_ignore_own_reservation() {
        let mut m = mgr();
        m.reserve(5, PairId(0));
        assert!(m.has_reservation(5));
        assert!(!m.has_reservation_excluding(5, PairId(0)));
        m.reserve(5, PairId(1));
        assert!(m.has_reservation_excluding(5, PairId(0)));
        // Backtracking skips the self-only slot 9 but finds shared slot 5.
        m.reserve(9, PairId(2));
        assert_eq!(m.latest_reserved_in_excluding(0, 10, PairId(2)), Some(5));
        assert_eq!(m.latest_reserved_in(0, 10), Some(9));
    }

    #[test]
    fn memory_bounded_by_consumer_count() {
        let mut m = mgr();
        // A consumer re-reserving thousands of times leaves one entry.
        for slot in 0..10_000 {
            m.reserve(slot, PairId(0));
        }
        assert_eq!(m.pending(), 1);
        assert_eq!(m.first_reserved(), Some(9_999));
    }

    fn sharded(shards: usize) -> ShardedCoreManager {
        ShardedCoreManager::new(SlotTrack::new(SimDuration::from_millis(1)), shards)
    }

    #[test]
    fn sharded_merge_preserves_global_fifo_order() {
        // Consumers 0..6 land on different shards (mod 3) but must
        // dispatch in global reservation order, like one big manager.
        for shards in [1, 2, 3, 4] {
            let mut m = sharded(shards);
            let order = [4usize, 1, 5, 0, 2, 3];
            for &c in &order {
                m.reserve(7, PairId(c));
            }
            assert_eq!(
                m.take_due(7),
                order.iter().map(|&c| PairId(c)).collect::<Vec<_>>(),
                "shards = {shards}"
            );
            assert_eq!(m.scheduled_wakeups(), 1);
        }
    }

    #[test]
    fn sharded_same_slot_rereserve_keeps_stamp() {
        let mut m = sharded(3);
        m.reserve(7, PairId(0));
        m.reserve(7, PairId(1));
        m.reserve(7, PairId(0)); // idempotent: keeps position 0
        assert_eq!(m.take_due(7), vec![PairId(0), PairId(1)]);
    }

    #[test]
    fn sharded_move_restamps_to_back() {
        let mut m = sharded(3);
        m.reserve(5, PairId(0));
        m.reserve(7, PairId(1));
        m.reserve(7, PairId(0)); // moved: goes to the back, like FIFO push
        assert_eq!(m.take_due(7), vec![PairId(1), PairId(0)]);
        assert!(!m.has_reservation(5), "old slot vacated");
    }

    #[test]
    fn sharded_matches_unsharded_on_random_ops() {
        // Differential check: a pseudo-random op stream must produce
        // identical observable behaviour on 1 vs 4 shards.
        let mut a = sharded(1);
        let mut b = sharded(4);
        let mut x = 0x5eed_u64;
        let mut rnd = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..2000 {
            let c = PairId((rnd() % 9) as usize);
            match rnd() % 5 {
                0 | 1 => {
                    let slot = rnd() % 12;
                    a.reserve(slot, c);
                    b.reserve(slot, c);
                }
                2 => {
                    assert_eq!(a.deregister(c), b.deregister(c));
                }
                3 => {
                    let slot = rnd() % 12;
                    assert_eq!(a.take_due(slot), b.take_due(slot));
                }
                _ => {
                    let after = rnd() % 12;
                    let upto = rnd() % 12;
                    assert_eq!(a.first_reserved(), b.first_reserved());
                    assert_eq!(
                        a.latest_reserved_in(after, upto),
                        b.latest_reserved_in(after, upto)
                    );
                    assert_eq!(
                        a.latest_reserved_in_excluding(after, upto, c),
                        b.latest_reserved_in_excluding(after, upto, c)
                    );
                    assert_eq!(a.has_reservation(upto), b.has_reservation(upto));
                    assert_eq!(
                        a.has_reservation_excluding(upto, c),
                        b.has_reservation_excluding(upto, c)
                    );
                    assert_eq!(a.pending(), b.pending());
                    assert_eq!(a.take_count_at(upto), b.take_count_at(upto));
                }
            }
        }
        assert_eq!(a.scheduled_wakeups(), b.scheduled_wakeups());
    }
}

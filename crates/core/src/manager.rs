//! The core manager (§V-B).
//!
//! One manager per core. It "accepts reservation requests for specific
//! slots made by the consumers", maintains the per-slot invocation lists,
//! supports deregistration, and — crucially for power — "will schedule
//! the next slot with at least one reservation, thus ensuring that the
//! CPU is not activated needlessly".
//!
//! The manager also provides the *backtracking helper* the consumer's
//! slot selection leans on: "using a helper function in the core manager
//! that backtracks to the next slot with reservations, the backtracking
//! process only consumes one iteration" — here
//! [`CoreManager::latest_reserved_in`].
//!
//! Memory stays bounded exactly as the paper argues: "future reservations
//! are limited to only the next invocation of every consumer", so the map
//! holds at most one entry per consumer hosted on the core.

use crate::model::ConsumerId;
use crate::slot::{SlotIndex, SlotTrack};
use pc_trace_events::{TraceEvent, TraceHandle};
use std::collections::BTreeMap;

/// Slot reservation book-keeping for one core.
///
/// ```
/// use pc_core::{CoreManager, PairId, SlotTrack};
/// use pc_sim::SimDuration;
///
/// let mut mgr = CoreManager::new(SlotTrack::new(SimDuration::from_millis(25)));
/// mgr.reserve(4, PairId(0));
/// mgr.reserve(4, PairId(1));           // latches onto the same slot
/// assert_eq!(mgr.first_reserved(), Some(4));
/// let group = mgr.take_due(4);         // one wakeup serves both
/// assert_eq!(group.len(), 2);
/// assert_eq!(mgr.scheduled_wakeups(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct CoreManager {
    track: SlotTrack,
    /// slot index → consumers to invoke at that slot.
    reservations: BTreeMap<SlotIndex, Vec<ConsumerId>>,
    /// Where each consumer currently holds its (single) reservation.
    held: BTreeMap<ConsumerId, SlotIndex>,
    /// Total wakeups this manager has scheduled (slots dispatched).
    scheduled_wakeups: u64,
    /// Event-trace handle (disabled by default) and the core index used
    /// to tag emitted `Slot*` events.
    trace: TraceHandle,
    core_tag: u32,
}

impl CoreManager {
    /// A manager over the given slot track with no reservations.
    pub fn new(track: SlotTrack) -> Self {
        CoreManager {
            track,
            reservations: BTreeMap::new(),
            held: BTreeMap::new(),
            scheduled_wakeups: 0,
            trace: TraceHandle::disabled(),
            core_tag: 0,
        }
    }

    /// Attaches an event-trace handle, tagging this manager's
    /// reservation traffic with `core` (the core index it manages).
    pub fn set_trace(&mut self, trace: TraceHandle, core: u32) {
        self.trace = trace;
        self.core_tag = core;
    }

    /// The slot track this manager schedules on.
    pub fn track(&self) -> &SlotTrack {
        &self.track
    }

    /// Reserves `slot` for `consumer`, replacing the consumer's previous
    /// reservation if any (each consumer holds at most one — its next
    /// invocation).
    pub fn reserve(&mut self, slot: SlotIndex, consumer: ConsumerId) {
        let prev = self.held.insert(consumer, slot);
        if let Some(old) = prev {
            if old == slot {
                return;
            }
            self.remove_from_slot(old, consumer);
        }
        self.reservations.entry(slot).or_default().push(consumer);
        self.trace.record(|| TraceEvent::SlotReserve {
            core: self.core_tag,
            consumer: consumer.0 as u32,
            slot,
            prev,
        });
    }

    /// Drops `consumer`'s reservation, if it holds one. Returns the slot
    /// it held.
    pub fn deregister(&mut self, consumer: ConsumerId) -> Option<SlotIndex> {
        let slot = self.held.remove(&consumer)?;
        self.remove_from_slot(slot, consumer);
        self.trace.record(|| TraceEvent::SlotRelease {
            core: self.core_tag,
            consumer: consumer.0 as u32,
            slot,
        });
        Some(slot)
    }

    fn remove_from_slot(&mut self, slot: SlotIndex, consumer: ConsumerId) {
        if let Some(list) = self.reservations.get_mut(&slot) {
            list.retain(|&c| c != consumer);
            if list.is_empty() {
                self.reservations.remove(&slot);
            }
        }
    }

    /// The consumer's current reservation, if any.
    pub fn reservation_of(&self, consumer: ConsumerId) -> Option<SlotIndex> {
        self.held.get(&consumer).copied()
    }

    /// Whether any consumer is registered for `slot`.
    pub fn has_reservation(&self, slot: SlotIndex) -> bool {
        self.reservations.contains_key(&slot)
    }

    /// Whether any consumer *other than* `except` is registered for
    /// `slot`. This is the latch test: a consumer's own reservation does
    /// not make its wakeup free.
    pub fn has_reservation_excluding(&self, slot: SlotIndex, except: ConsumerId) -> bool {
        self.reservations
            .get(&slot)
            .map(|l| l.iter().any(|&c| c != except))
            .unwrap_or(false)
    }

    /// The earliest reserved slot — what the manager arms its next
    /// wakeup for.
    pub fn first_reserved(&self) -> Option<SlotIndex> {
        self.reservations.keys().next().copied()
    }

    /// The earliest reserved slot at or after `slot`.
    pub fn next_reserved_at_or_after(&self, slot: SlotIndex) -> Option<SlotIndex> {
        self.reservations.range(slot..).next().map(|(&s, _)| s)
    }

    /// The backtracking helper (§V-C): the *latest* reserved slot in
    /// `(after, upto]`, i.e. the first latching opportunity encountered
    /// when walking backwards from `upto`.
    pub fn latest_reserved_in(&self, after: SlotIndex, upto: SlotIndex) -> Option<SlotIndex> {
        if upto <= after {
            return None;
        }
        self.reservations
            .range(after + 1..=upto)
            .next_back()
            .map(|(&s, _)| s)
    }

    /// [`CoreManager::latest_reserved_in`] skipping slots whose only
    /// reservee is `except` (no latch value in one's own reservation).
    pub fn latest_reserved_in_excluding(
        &self,
        after: SlotIndex,
        upto: SlotIndex,
        except: ConsumerId,
    ) -> Option<SlotIndex> {
        if upto <= after {
            return None;
        }
        self.reservations
            .range(after + 1..=upto)
            .rev()
            .find(|(_, l)| l.iter().any(|&c| c != except))
            .map(|(&s, _)| s)
    }

    /// Removes and returns the consumers registered for `slot`, counting
    /// one scheduled wakeup if any were present.
    pub fn take_due(&mut self, slot: SlotIndex) -> Vec<ConsumerId> {
        match self.reservations.remove(&slot) {
            Some(list) => {
                for c in &list {
                    self.held.remove(c);
                }
                self.scheduled_wakeups += 1;
                self.trace.record(|| TraceEvent::SlotDispatch {
                    core: self.core_tag,
                    slot,
                    consumers: list.iter().map(|c| c.0 as u32).collect(),
                });
                list
            }
            None => Vec::new(),
        }
    }

    /// How many consumers are registered for `slot`.
    pub fn take_count_at(&self, slot: SlotIndex) -> usize {
        self.reservations.get(&slot).map(|l| l.len()).unwrap_or(0)
    }

    /// Number of slot wakeups dispatched so far.
    pub fn scheduled_wakeups(&self) -> u64 {
        self.scheduled_wakeups
    }

    /// Number of live reservations (consumers with a pending slot).
    pub fn pending(&self) -> usize {
        self.held.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PairId;
    use pc_sim::SimDuration;

    fn mgr() -> CoreManager {
        CoreManager::new(SlotTrack::new(SimDuration::from_millis(1)))
    }

    #[test]
    fn reserve_and_take() {
        let mut m = mgr();
        m.reserve(5, PairId(0));
        m.reserve(5, PairId(1));
        m.reserve(7, PairId(2));
        assert!(m.has_reservation(5));
        assert_eq!(m.first_reserved(), Some(5));
        let due = m.take_due(5);
        assert_eq!(due, vec![PairId(0), PairId(1)]);
        assert_eq!(m.first_reserved(), Some(7));
        assert_eq!(m.scheduled_wakeups(), 1);
    }

    #[test]
    fn take_empty_slot_is_free() {
        let mut m = mgr();
        assert!(m.take_due(3).is_empty());
        assert_eq!(m.scheduled_wakeups(), 0);
    }

    #[test]
    fn rereservation_moves_consumer() {
        let mut m = mgr();
        m.reserve(5, PairId(0));
        m.reserve(9, PairId(0));
        assert!(!m.has_reservation(5), "old slot must be vacated");
        assert_eq!(m.reservation_of(PairId(0)), Some(9));
        assert_eq!(m.pending(), 1);
    }

    #[test]
    fn rereserving_same_slot_is_idempotent() {
        let mut m = mgr();
        m.reserve(5, PairId(0));
        m.reserve(5, PairId(0));
        assert_eq!(m.take_due(5), vec![PairId(0)]);
    }

    #[test]
    fn deregister_clears() {
        let mut m = mgr();
        m.reserve(4, PairId(1));
        assert_eq!(m.deregister(PairId(1)), Some(4));
        assert!(!m.has_reservation(4));
        assert_eq!(m.deregister(PairId(1)), None);
    }

    #[test]
    fn next_reserved_at_or_after_scans_forward() {
        let mut m = mgr();
        m.reserve(10, PairId(0));
        m.reserve(20, PairId(1));
        assert_eq!(m.next_reserved_at_or_after(0), Some(10));
        assert_eq!(m.next_reserved_at_or_after(10), Some(10));
        assert_eq!(m.next_reserved_at_or_after(11), Some(20));
        assert_eq!(m.next_reserved_at_or_after(21), None);
    }

    #[test]
    fn latest_reserved_in_backtracks() {
        let mut m = mgr();
        m.reserve(10, PairId(0));
        m.reserve(14, PairId(1));
        m.reserve(30, PairId(2));
        // Walking back from slot 20: the first reserved slot met is 14.
        assert_eq!(m.latest_reserved_in(5, 20), Some(14));
        // Bounds are (after, upto]: slot 10 excluded when after = 10.
        assert_eq!(m.latest_reserved_in(10, 13), None);
        assert_eq!(m.latest_reserved_in(10, 14), Some(14));
        assert_eq!(m.latest_reserved_in(20, 20), None);
        assert_eq!(m.latest_reserved_in(20, 19), None, "empty range");
    }

    #[test]
    fn per_slot_fifo_order_preserved() {
        let mut m = mgr();
        for k in 0..5 {
            m.reserve(3, PairId(k));
        }
        assert_eq!(
            m.take_due(3),
            (0..5).map(PairId).collect::<Vec<_>>(),
            "consumers dispatch in reservation order"
        );
    }

    #[test]
    fn exclusion_queries_ignore_own_reservation() {
        let mut m = mgr();
        m.reserve(5, PairId(0));
        assert!(m.has_reservation(5));
        assert!(!m.has_reservation_excluding(5, PairId(0)));
        m.reserve(5, PairId(1));
        assert!(m.has_reservation_excluding(5, PairId(0)));
        // Backtracking skips the self-only slot 9 but finds shared slot 5.
        m.reserve(9, PairId(2));
        assert_eq!(m.latest_reserved_in_excluding(0, 10, PairId(2)), Some(5));
        assert_eq!(m.latest_reserved_in(0, 10), Some(9));
    }

    #[test]
    fn memory_bounded_by_consumer_count() {
        let mut m = mgr();
        // A consumer re-reserving thousands of times leaves one entry.
        for slot in 0..10_000 {
            m.reserve(slot, PairId(0));
        }
        assert_eq!(m.pending(), 1);
        assert_eq!(m.first_reserved(), Some(9_999));
    }
}

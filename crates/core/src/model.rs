//! The paper's formal objects (§IV-B), as executable definitions.
//!
//! These are not used on the algorithm hot path — the simulator and the
//! core manager maintain their own incremental state — but they give the
//! test suite and the analysis binaries an independent, literal
//! transcription of Equations 1–4 and 7 to validate against.

use pc_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Identifies a producer-consumer pair (the paper indexes producers,
/// consumers and buffers by the same `i`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PairId(pub usize);

/// Identifies a consumer; by the paper's one-to-one assumption this is
/// interchangeable with its [`PairId`].
pub type ConsumerId = PairId;

/// Eq. 1 — γᵢ(τₘ₋₁, τₘ): the number of items produced in
/// `[from, to)`. `times` must be sorted.
pub fn gamma_count(times: &[SimTime], from: SimTime, to: SimTime) -> usize {
    debug_assert!(times.windows(2).all(|w| w[0] <= w[1]));
    let lo = times.partition_point(|&t| t < from);
    let hi = times.partition_point(|&t| t < to);
    hi.saturating_sub(lo)
}

/// One consumer invocation for objective evaluation: when it ran, on
/// which core, and for how long it kept the core busy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Invocation {
    /// The invoked consumer.
    pub consumer: ConsumerId,
    /// Core the consumer is mapped to (the paper's `f(cᵢ)`).
    pub core: usize,
    /// Invocation instant τᵢⱼ.
    pub at: SimTime,
    /// How long the invocation keeps the core active.
    pub busy: SimDuration,
}

/// Eqs. 3–4 — the wakeup objective: counts invocations that find their
/// core idle, i.e. Σᵢ Σⱼ w(τᵢⱼ)/ω. Invocations on the same core whose
/// busy windows overlap or abut share a single wakeup, exactly like
/// [`pc_sim::Core`]'s span merging.
pub fn wakeup_objective(invocations: &[Invocation], cores: usize) -> u64 {
    let mut by_core: Vec<Vec<(SimTime, SimTime)>> = vec![Vec::new(); cores];
    for inv in invocations {
        assert!(inv.core < cores, "invocation on unknown core {}", inv.core);
        by_core[inv.core].push((inv.at, inv.at + inv.busy));
    }
    let mut wakeups = 0;
    for spans in &mut by_core {
        spans.sort();
        let mut busy_until: Option<SimTime> = None;
        for &(start, end) in spans.iter() {
            match busy_until {
                Some(t) if start <= t => {
                    busy_until = Some(t.max(end));
                }
                _ => {
                    wakeups += 1;
                    busy_until = Some(end);
                }
            }
        }
    }
    wakeups
}

/// Eq. 7 — the alignment objective: Σ |τᵢⱼ − g(τᵢⱼ)| for a slot function
/// `g`. Zero iff every invocation sits exactly on a slot boundary.
pub fn alignment_objective<G>(invocations: &[Invocation], g: G) -> SimDuration
where
    G: Fn(SimTime) -> SimTime,
{
    invocations
        .iter()
        .map(|inv| {
            let s = g(inv.at);
            debug_assert!(s <= inv.at, "g must return a slot at or before τ");
            inv.at.saturating_since(s)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn d(us: u64) -> SimDuration {
        SimDuration::from_micros(us)
    }

    fn inv(core: usize, at: u64, busy: u64) -> Invocation {
        Invocation {
            consumer: PairId(0),
            core,
            at: t(at),
            busy: d(busy),
        }
    }

    #[test]
    fn gamma_counts_half_open_interval() {
        let times = [t(10), t(20), t(30)];
        assert_eq!(gamma_count(&times, t(10), t(30)), 2);
        assert_eq!(gamma_count(&times, t(0), t(100)), 3);
        assert_eq!(gamma_count(&times, t(30), t(30)), 0);
        assert_eq!(gamma_count(&times, t(31), t(100)), 0);
    }

    #[test]
    fn separate_invocations_cost_separate_wakeups() {
        // The paper's Fig. 6(a): 8 spread-out invocations = 8 wakeups.
        let invs: Vec<_> = (0..8).map(|k| inv(0, k * 1000, 10)).collect();
        assert_eq!(wakeup_objective(&invs, 1), 8);
    }

    #[test]
    fn grouped_invocations_share_wakeups() {
        // Fig. 6(b): invocations aligned to 3 slots = 3 wakeups, because
        // consumers at the same slot run back to back.
        let mut invs = Vec::new();
        for slot in [0u64, 1000, 2000] {
            invs.push(inv(0, slot, 10));
            invs.push(inv(0, slot + 10, 10)); // latched right behind
            invs.push(inv(0, slot + 20, 10));
        }
        assert_eq!(wakeup_objective(&invs, 1), 3);
    }

    #[test]
    fn cores_do_not_share_wakeups() {
        let invs = vec![inv(0, 0, 10), inv(1, 0, 10)];
        assert_eq!(wakeup_objective(&invs, 2), 2);
    }

    #[test]
    fn overlap_merges_even_unsorted_input() {
        let invs = vec![inv(0, 100, 50), inv(0, 0, 120)];
        assert_eq!(wakeup_objective(&invs, 1), 1);
    }

    #[test]
    fn alignment_zero_when_on_slots() {
        let delta = 1000;
        let g = move |time: SimTime| SimTime::from_micros((time.as_nanos() / 1000) / delta * delta);
        let invs = vec![inv(0, 0, 1), inv(0, 1000, 1), inv(0, 3000, 1)];
        assert_eq!(alignment_objective(&invs, g), SimDuration::ZERO);
    }

    #[test]
    fn alignment_sums_offsets() {
        let delta = 1000;
        let g = move |time: SimTime| SimTime::from_micros((time.as_nanos() / 1000) / delta * delta);
        let invs = vec![inv(0, 250, 1), inv(0, 1900, 1)];
        assert_eq!(alignment_objective(&invs, g), d(250 + 900));
    }

    #[test]
    #[should_panic(expected = "unknown core")]
    fn invocation_on_missing_core_panics() {
        wakeup_objective(&[inv(3, 0, 1)], 2);
    }
}

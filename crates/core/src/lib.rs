//! # pc-core — the paper's contribution: PBPL and its baselines
//!
//! Implements §IV (formal model) and §V (the power-aware multiple
//! producer-consumer algorithm) of *Power-efficient Multiple
//! Producer-Consumer* (IPDPS 2014), plus simulation behaviours for all
//! seven §III baselines, and the experiment driver used by every
//! figure/table reproduction.
//!
//! * [`model`] — the formal objects of §IV-B: γ (Eq. 1), the wakeup cost
//!   function w (Eq. 3), the wakeup objective (Eq. 4) and the slot
//!   alignment objective (Eq. 7), used by tests and analyses.
//! * [`slot`] — the slot track: Δ, slot indexing, g(τ) (Eq. 6).
//! * [`predict`] — rate predictors: the paper's moving average, plus EWMA
//!   and the scalar Kalman filter the paper names as future work (§VIII).
//! * [`cost`] — the reservation cost function ρ (Eq. 8) and the
//!   backtracking slot selection of §V-C.
//! * [`manager`] — the per-core slot reservation manager of §V-B.
//! * [`resize`] — dynamic buffer sizing decisions of §V-C.
//! * [`config`] — strategy and experiment configuration.
//! * [`strategy`] — the eight consumer behaviours (BW, Yield, Mutex, Sem,
//!   BP, PBP, SPBP, PBPL) as simulation models.
//! * [`system`] — the multi-pair, multi-core discrete-event system and
//!   the [`Experiment`] builder.
//! * [`metrics`] — per-run metric collection.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod cost;
pub mod manager;
pub mod metrics;
pub mod model;
pub mod predict;
pub mod resize;
pub mod slot;
pub mod strategy;
pub mod system;

pub use config::{OverloadConfig, PbplConfig, PredictorKind, StrategyKind};
pub use cost::{select_slot, CostModel, SlotChoice};
pub use manager::{CoreManager, ReservationBook, ShardedCoreManager};
pub use metrics::{PairMetrics, RunMetrics};
pub use model::{gamma_count, wakeup_objective, ConsumerId, PairId};
pub use predict::{Ewma, Holt, Kalman, MovingAverage, RatePredictor};
pub use slot::SlotTrack;
pub use system::{Experiment, ExperimentBuilder};

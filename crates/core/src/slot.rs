//! The slot track (§V-A).
//!
//! "We begin with interpreting time as a track with periodic slots …
//! denoted as the slot size Δ. The default slot size is equal to the
//! minimum of all maximum acceptable response latencies defined by the
//! producer-consumer pairs."
//!
//! A [`SlotTrack`] is pure arithmetic over that track: slot indices,
//! slot start times, and the paper's `g(τ)` (Eq. 6) — the closest slot
//! at or before an instant.

use pc_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Index of a slot on the track. Slot `k` starts at `origin + k·Δ`.
pub type SlotIndex = u64;

/// Periodic slot arithmetic.
///
/// ```
/// use pc_core::SlotTrack;
/// use pc_sim::{SimDuration, SimTime};
///
/// let track = SlotTrack::new(SimDuration::from_millis(25));
/// let t = SimTime::from_millis(60);
/// assert_eq!(track.g(t), SimTime::from_millis(50));      // Eq. 6
/// assert_eq!(track.next_slot_after(t), 3);               // fires at 75ms
/// assert_eq!(track.misalignment(t), SimDuration::from_millis(10));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotTrack {
    delta: SimDuration,
    origin: SimTime,
}

impl SlotTrack {
    /// A track with slot size `delta` starting at time zero.
    ///
    /// Panics if `delta` is zero.
    pub fn new(delta: SimDuration) -> Self {
        Self::with_origin(delta, SimTime::ZERO)
    }

    /// A track with slot size `delta` whose slot 0 begins at `origin`.
    pub fn with_origin(delta: SimDuration, origin: SimTime) -> Self {
        assert!(!delta.is_zero(), "slot size Δ must be nonzero");
        SlotTrack { delta, origin }
    }

    /// The paper's default Δ: the minimum of the pairs' maximum response
    /// latencies.
    ///
    /// Panics on an empty latency list.
    pub fn from_max_latencies(latencies: &[SimDuration]) -> Self {
        let delta = latencies
            .iter()
            .copied()
            .min()
            .expect("need at least one consumer latency bound");
        SlotTrack::new(delta)
    }

    /// The slot size Δ.
    pub fn delta(&self) -> SimDuration {
        self.delta
    }

    /// Index of the slot containing `t` (i.e. the slot whose start is
    /// `g(t)`). Times before the origin clamp to slot 0.
    pub fn slot_index(&self, t: SimTime) -> SlotIndex {
        t.saturating_since(self.origin).as_nanos() / self.delta.as_nanos()
    }

    /// Start time of slot `idx`.
    pub fn slot_start(&self, idx: SlotIndex) -> SimTime {
        self.origin + self.delta * idx
    }

    /// Eq. 6 — `g(τ) = inf { s ∈ S | s ≤ τ }`: the latest slot start at
    /// or before `τ`.
    pub fn g(&self, t: SimTime) -> SimTime {
        self.slot_start(self.slot_index(t))
    }

    /// Index of the first slot whose start is strictly after `t`.
    pub fn next_slot_after(&self, t: SimTime) -> SlotIndex {
        self.slot_index(t) + 1
    }

    /// Index of the first slot whose start is at or after `t`.
    pub fn slot_at_or_after(&self, t: SimTime) -> SlotIndex {
        let idx = self.slot_index(t);
        if self.slot_start(idx) == t {
            idx
        } else {
            idx + 1
        }
    }

    /// Eq. 7 contribution — `|τ − g(τ)|` for one invocation.
    pub fn misalignment(&self, t: SimTime) -> SimDuration {
        t.saturating_since(self.g(t))
    }

    /// Sum of Eq. 7 over invocation times.
    pub fn alignment_cost(&self, times: &[SimTime]) -> SimDuration {
        times.iter().map(|&t| self.misalignment(t)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn at_ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn index_and_start_roundtrip() {
        let track = SlotTrack::new(ms(1));
        for idx in [0u64, 1, 7, 1000] {
            assert_eq!(track.slot_index(track.slot_start(idx)), idx);
        }
    }

    #[test]
    fn g_is_latest_slot_at_or_before() {
        let track = SlotTrack::new(ms(1));
        assert_eq!(track.g(at_ms(0)), at_ms(0));
        assert_eq!(track.g(SimTime::from_micros(999)), at_ms(0));
        assert_eq!(track.g(at_ms(1)), at_ms(1));
        assert_eq!(track.g(SimTime::from_micros(2500)), at_ms(2));
    }

    #[test]
    fn g_never_exceeds_argument() {
        let track = SlotTrack::new(SimDuration::from_micros(700));
        for k in 0..5000u64 {
            let t = SimTime::from_micros(k * 13);
            assert!(track.g(t) <= t);
            assert!(t.saturating_since(track.g(t)) < track.delta());
        }
    }

    #[test]
    fn next_and_at_or_after() {
        let track = SlotTrack::new(ms(1));
        assert_eq!(track.next_slot_after(at_ms(0)), 1);
        assert_eq!(track.slot_at_or_after(at_ms(0)), 0);
        assert_eq!(track.slot_at_or_after(SimTime::from_micros(1)), 1);
        assert_eq!(track.slot_at_or_after(at_ms(1)), 1);
        assert_eq!(track.next_slot_after(SimTime::from_micros(1700)), 2);
    }

    #[test]
    fn default_delta_is_min_latency() {
        let track = SlotTrack::from_max_latencies(&[ms(10), ms(2), ms(5)]);
        assert_eq!(track.delta(), ms(2));
    }

    #[test]
    fn alignment_cost_zero_on_slots() {
        let track = SlotTrack::new(ms(1));
        let times: Vec<SimTime> = (0..10).map(at_ms).collect();
        assert_eq!(track.alignment_cost(&times), SimDuration::ZERO);
    }

    #[test]
    fn alignment_cost_accumulates() {
        let track = SlotTrack::new(ms(1));
        let times = vec![SimTime::from_micros(1200), SimTime::from_micros(2900)];
        assert_eq!(
            track.alignment_cost(&times),
            SimDuration::from_micros(200 + 900)
        );
    }

    #[test]
    fn origin_offsets_track() {
        let track = SlotTrack::with_origin(ms(1), at_ms(5));
        assert_eq!(track.slot_start(0), at_ms(5));
        assert_eq!(track.g(at_ms(6)), at_ms(6));
        // Times before the origin clamp to slot 0.
        assert_eq!(track.slot_index(at_ms(1)), 0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_delta_panics() {
        SlotTrack::new(SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "latency")]
    fn empty_latencies_panic() {
        SlotTrack::from_max_latencies(&[]);
    }
}

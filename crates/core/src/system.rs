//! The multiple producer-consumer system simulator and the
//! [`Experiment`] builder — the machinery behind every figure and table
//! reproduction.
//!
//! The simulation follows the paper's system model (§IV-A) exactly:
//! a multicore with idle/active cores, M producer-consumer pairs with one
//! consumer per producer, producers that are *external* (they never wake
//! consumer cores themselves), consumers pinned to cores with no
//! background processes, and a finite run. Each §III strategy plus PBPL
//! is expressed as event-handler behaviour over the `pc-sim` engine; the
//! finished core timelines then flow through `pc-power` for energy and
//! PowerTop-style metrics.

use crate::config::{OverloadConfig, PbplConfig, StrategyKind};
use crate::cost::{select_slot, CostModel};
use crate::manager::ShardedCoreManager;
use crate::metrics::{PairMetrics, RunMetrics};
use crate::model::PairId;
use crate::predict::RatePredictor;
use crate::resize::{
    overrun_target, plan_resize, predicted_fill as predicted_fill_items, ResizePlan,
};
use crate::slot::{SlotIndex, SlotTrack};
use crate::strategy::{
    batch_work, item_driven_work, MUTEX_SYNC_FACTOR, SEM_SYNC_FACTOR, YIELD_DVFS_FACTOR,
    YIELD_IDLE_PER_TICK, YIELD_TICK,
};
use pc_faults::{Fault, FaultKind, FaultPlan};
use pc_power::{account_cores, GovernorKind, Meter, PowerModel};
use pc_queues::elastic::Overflow;
use pc_queues::{ElasticBuffer, GlobalPool};
use pc_sim::event::EventId;
use pc_sim::{Core, CoreId, Engine, Popped, SimDuration, SimTime, TimerModel};
use pc_trace::{Trace, WorldCupConfig};
use pc_trace_events::{TraceEvent, TraceHandle, Trigger as TraceTrigger};
use std::sync::Arc;

/// Simulation events routed through the timer wheel. Workload arrivals
/// are *not* events: they ride the engine's arrival calendar
/// ([`pc_sim::ArrivalCalendar`], DESIGN.md §14) and surface as
/// [`Popped::Arrival`] in the main loop, keyed by pair index.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// An item-driven consumer finishes its current drain window.
    DrainDone { pair: usize },
    /// A PBP/SPBP periodic timer fires for `pair`.
    TimerFire { pair: usize },
    /// A PBPL core manager's armed slot fires on `core`.
    SlotWake { core: usize, slot: SlotIndex },
    /// Fault `f` of the active plan becomes effective.
    FaultStart { f: usize },
    /// Fault `f`'s window closes; its effects are rolled back.
    FaultEnd { f: usize },
    /// The fleet supervisor's periodic check fires (overload control
    /// only, DESIGN.md §15). Never scheduled when overload control is
    /// disabled, so default runs see no extra wheel traffic.
    SupervisorTick,
}

/// What triggered a consumer invocation (for the §VI-C wakeup split).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Trigger {
    Scheduled,
    Overflow,
}

impl From<Trigger> for TraceTrigger {
    fn from(t: Trigger) -> TraceTrigger {
        match t {
            Trigger::Scheduled => TraceTrigger::Scheduled,
            Trigger::Overflow => TraceTrigger::Overflow,
        }
    }
}

/// Per-pair production timestamps. `Owned` when the run had to
/// materialise them (generated workloads, truncation, workload faults);
/// `Shared` is a zero-copy view into a fleet shared across sweep cells
/// (`pair` indexes the fleet), with the run horizon enforced at the
/// consumption site instead of by physical truncation.
enum PairTimes {
    Owned(Vec<SimTime>),
    Shared(Arc<Vec<Trace>>, usize),
}

impl PairTimes {
    #[inline]
    fn get(&self, idx: usize) -> Option<SimTime> {
        match self {
            PairTimes::Owned(v) => v.get(idx).copied(),
            PairTimes::Shared(fleet, pair) => fleet[*pair].get(idx),
        }
    }
}

struct PairState {
    // Hot fields first: the per-item produce path touches `times`,
    // `next_idx`, `buffer`/`backlog`, `busy_until` and `core` on every
    // arrival — grouping them keeps that working set on the pair's
    // leading cache lines; the cold predictor/watchdog tail below is
    // only touched on invocations (orders of magnitude rarer).
    times: PairTimes,
    next_idx: usize,
    core: usize,
    /// Consumer-side busy horizon (item-driven strategies).
    busy_until: SimTime,
    drain_pending: bool,
    /// Item-driven backlog (Mutex/Sem). Capacity is advisory only: the
    /// real producer would block, which is invisible to consumer-side
    /// power (§IV assumes producers are external processes).
    backlog: Vec<SimTime>,
    /// Bounded batch buffer (BP/PBP/SPBP/PBPL).
    buffer: Option<ElasticBuffer<SimTime>>,
    metrics: PairMetrics,
    predictor: Option<Box<dyn RatePredictor>>,
    last_invocation: SimTime,
    /// SPBP's absolute next nominal fire instant.
    periodic_anchor: SimTime,
    /// This consumer's maximum acceptable response latency (§IV-A);
    /// bounds how far ahead it may reserve.
    max_latency: SimDuration,
    /// Degradation watchdog (PBPL, `degrade.enabled` only): consecutive
    /// overflow wakes since the last scheduled one.
    consec_overflow: u32,
    /// Consecutive scheduled wakes while degraded (exit counter).
    consec_scheduled: u32,
    /// Whether the prediction-error watchdog has tripped.
    degraded: bool,
    /// Bounded-retry pool admission: an unsatisfied grow target and how
    /// many more plans may retry it before accepting current capacity.
    pending_grow: Option<(usize, u32)>,
}

/// Runtime state of the active fault plan. Present only when the plan is
/// non-empty, so zero-fault runs take the exact branches (and RNG draws)
/// of a build without fault injection.
struct FaultRuntime {
    faults: Vec<Fault>,
    /// Whether each fault is currently effective.
    active: Vec<bool>,
    /// Per-pair consumer service-time multiplier, fixed-point ×1000.
    work_x1000: Vec<u64>,
    /// Per-core additional timer-fire delay, nanoseconds.
    timer_delay_ns: Vec<u64>,
    /// Per-core count of active dropped-wakeup faults.
    drop_wake: Vec<u32>,
    /// Per-core wakeups swallowed while dropped (reported on recovery).
    swallowed: Vec<u64>,
    /// Per-fault, per-shard pool units actually squeezed away
    /// (`pool_squeeze` / `pool_squeeze_shard`): a provenance vector per
    /// fault, so recovery repays exactly the shards it drained.
    squeezed: Vec<Vec<usize>>,
}

/// Per-pair admission-controller state (DESIGN.md §15). All integer
/// arithmetic at integer sim-time: the decision sequence is a pure
/// function of the arrival stream, never of wall-clock or float
/// accumulation.
struct AdmissionState {
    /// Consecutive over-deadline arrivals (trip counter).
    consec_over: u32,
    /// Consecutive under-threshold arrivals (clear counter).
    consec_under: u32,
    /// Whether the pair is currently shedding.
    in_overload: bool,
    /// Whether the open window was forced by the fleet supervisor
    /// (escalation) rather than tripped by this pair's own estimator.
    escalated: bool,
    /// Items shed in the open window; reported by `OverloadCleared` so
    /// the oracle can cross-check it against the `ItemShed` count.
    shed_in_window: u64,
}

impl AdmissionState {
    fn new() -> Self {
        AdmissionState {
            consec_over: 0,
            consec_under: 0,
            in_overload: false,
            escalated: false,
            shed_in_window: 0,
        }
    }
}

/// Runtime state of the overload-control layer (DESIGN.md §15). Present
/// only when [`OverloadConfig::enabled`] — disabled runs take the exact
/// branches of a build without overload control, which is what keeps
/// `suite.json`/`chaos.json`/`scale.json` byte-identical (the same
/// `Option` inertness pattern as [`FaultRuntime`]).
struct OverloadRuntime {
    cfg: OverloadConfig,
    admission: Vec<AdmissionState>,
    /// Fleet-wide escalation latch: while set, per-pair windows cannot
    /// clear (arrivals keep shedding) until the supervisor de-escalates.
    fleet_shed: bool,
    /// `items_consumed` per pair at the previous supervisor tick.
    last_consumed: Vec<u64>,
    /// Consecutive ticks without consume progress while items buffered.
    stuck_ticks: Vec<u32>,
}

struct Sim {
    strategy: StrategyKind,
    power: PowerModel,
    governor: GovernorKind,
    cost: CostModel,
    timer: TimerModel,
    end: SimTime,
    engine: Engine<Ev>,
    cores: Vec<Core>,
    core_busy_until: Vec<SimTime>,
    managers: Vec<ShardedCoreManager>,
    slot_timer: Vec<Option<(EventId, SlotIndex)>>,
    pairs: Vec<PairState>,
    /// Pair indices hosted on each core (fixed assignment), so hot paths
    /// never re-derive it.
    pairs_by_core: Vec<Vec<usize>>,
    base_capacity: usize,
    scratch: Vec<SimTime>,
    /// Kept alive so buffers can borrow/return against it; also used by
    /// conservation assertions in tests.
    _pool: Option<Arc<GlobalPool>>,
    /// Active fault plan, `None` on zero-fault runs.
    faults: Option<FaultRuntime>,
    /// Overload-control layer, `None` unless explicitly enabled.
    overload: Option<OverloadRuntime>,
    /// Event-trace handle (disabled unless the builder attached one).
    trace: TraceHandle,
}

impl Sim {
    fn pbpl_config(&self) -> Option<&PbplConfig> {
        match &self.strategy {
            StrategyKind::Pbpl(cfg) => Some(cfg),
            _ => None,
        }
    }

    // ------------------------------------------------------------------
    // Fault injection (DESIGN.md §10)
    // ------------------------------------------------------------------

    /// Applies the pair's active service-time inflation (integer ×1000
    /// fixed point; exact identity at the nominal 1000).
    fn inflate_work(&self, i: usize, work: SimDuration) -> SimDuration {
        match &self.faults {
            Some(fr) if fr.work_x1000[i] != 1000 => SimDuration::from_nanos(
                ((work.as_nanos() as u128 * fr.work_x1000[i] as u128) / 1000) as u64,
            ),
            _ => work,
        }
    }

    /// Extra timer-fire delay currently injected on `core`.
    fn fault_timer_delay(&self, core: usize) -> SimDuration {
        match &self.faults {
            Some(fr) => SimDuration::from_nanos(fr.timer_delay_ns[core]),
            None => SimDuration::ZERO,
        }
    }

    /// Whether scheduled wakeups on `core` are currently being swallowed.
    fn wake_dropped(&self, core: usize) -> bool {
        matches!(&self.faults, Some(fr) if fr.drop_wake[core] > 0)
    }

    /// Counts one swallowed wakeup on `core` (reported on recovery).
    fn count_swallowed(&mut self, core: usize) {
        if let Some(fr) = self.faults.as_mut() {
            fr.swallowed[core] += 1;
        }
    }

    /// Pool units available, or `u64::MAX` when the strategy has no pool
    /// (the oracle skips pool accounting on that sentinel).
    fn pool_available_u64(&self) -> u64 {
        self._pool
            .as_ref()
            .map_or(u64::MAX, |p| p.available() as u64)
    }

    /// A fault window opens: make its effect live and trace the
    /// injection. Targets outside the run's pair/core range are ignored
    /// (arbitrary plans in property tests), but still traced.
    fn fault_start(&mut self, f: usize) {
        let fault = self
            .faults
            .as_ref()
            .expect("fault event without a plan")
            .faults[f];
        let mut param = fault.kind.param();
        match fault.kind {
            FaultKind::RateShock { .. } | FaultKind::ProducerStall { .. } => {
                // Workload faults were applied to the trace at build time;
                // the events only mark the window for observers.
            }
            FaultKind::ConsumerSlowdown { pair, factor_x1000 } => {
                let fr = self.faults.as_mut().expect("checked above");
                if let Some(x) = fr.work_x1000.get_mut(pair as usize) {
                    *x = factor_x1000.max(1000) as u64;
                }
            }
            FaultKind::TimerDrift { core, delay_ns } => {
                let fr = self.faults.as_mut().expect("checked above");
                if let Some(d) = fr.timer_delay_ns.get_mut(core as usize) {
                    *d = d.saturating_add(delay_ns);
                }
            }
            FaultKind::DroppedWakeup { core } => {
                let fr = self.faults.as_mut().expect("checked above");
                if let Some(c) = fr.drop_wake.get_mut(core as usize) {
                    *c += 1;
                }
            }
            FaultKind::PoolSqueeze { units } => {
                // Best-effort: grab what the pool has, up to the request.
                // Consumers degrade to their current capacity meanwhile.
                // Tracked acquisition walks every shard from 0, so the
                // grant equals what a single-counter pool would give.
                let pool = self._pool.clone();
                let fr = self.faults.as_mut().expect("checked above");
                let granted = match pool.as_ref() {
                    Some(p) => p.acquire_at(0, units as usize, &mut fr.squeezed[f]),
                    None => 0,
                };
                param = granted as u64;
            }
            FaultKind::PoolSqueezeShard { shard, units } => {
                // Shard-targeted squeeze: drains only the named sub-pool
                // (modulo the shard count), so the per-shard ledger — not
                // just the global one — absorbs the hit.
                let pool = self._pool.clone();
                let fr = self.faults.as_mut().expect("checked above");
                let granted = match pool.as_ref() {
                    Some(p) => p.acquire_shard(
                        shard as usize % p.shards(),
                        units as usize,
                        &mut fr.squeezed[f],
                    ),
                    None => 0,
                };
                param = granted as u64;
            }
        }
        self.faults.as_mut().expect("checked above").active[f] = true;
        let pool_available = self.pool_available_u64();
        self.trace.record(|| TraceEvent::FaultInjected {
            id: fault.id,
            kind: fault.kind.name().to_string(),
            pair: fault.kind.pair(),
            core: fault.kind.core(),
            param,
            pool_available,
        });
    }

    /// A fault window closes: roll its effect back, trace the recovery,
    /// and — for dropped wakeups — re-plan the core's timer from the
    /// reservation book, which stayed consistent throughout.
    fn fault_end(&mut self, f: usize) {
        let now = self.engine.now();
        let fault = self
            .faults
            .as_ref()
            .expect("fault event without a plan")
            .faults[f];
        let mut param = fault.kind.param();
        let mut rearm_core = None;
        match fault.kind {
            FaultKind::RateShock { .. } | FaultKind::ProducerStall { .. } => {}
            FaultKind::ConsumerSlowdown { pair, .. } => {
                let fr = self.faults.as_mut().expect("checked above");
                if let Some(x) = fr.work_x1000.get_mut(pair as usize) {
                    *x = 1000;
                }
            }
            FaultKind::TimerDrift { core, delay_ns } => {
                let fr = self.faults.as_mut().expect("checked above");
                if let Some(d) = fr.timer_delay_ns.get_mut(core as usize) {
                    *d = d.saturating_sub(delay_ns);
                }
            }
            FaultKind::DroppedWakeup { core } => {
                let fr = self.faults.as_mut().expect("checked above");
                if let Some(c) = fr.drop_wake.get_mut(core as usize) {
                    *c = c.saturating_sub(1);
                    param = fr.swallowed[core as usize];
                    if *c == 0 {
                        fr.swallowed[core as usize] = 0;
                        rearm_core = Some(core as usize);
                    }
                }
            }
            FaultKind::PoolSqueeze { .. } | FaultKind::PoolSqueezeShard { .. } => {
                let pool = self._pool.clone();
                let fr = self.faults.as_mut().expect("checked above");
                let held = &mut fr.squeezed[f];
                let granted: usize = held.iter().sum();
                param = granted as u64;
                if granted > 0 {
                    pool.as_ref()
                        .expect("squeeze granted implies a pool")
                        .restore_at(0, granted, held);
                }
            }
        }
        self.faults.as_mut().expect("checked above").active[f] = false;
        let pool_available = self.pool_available_u64();
        self.trace.record(|| TraceEvent::FaultRecovered {
            id: fault.id,
            kind: fault.kind.name().to_string(),
            pair: fault.kind.pair(),
            core: fault.kind.core(),
            param,
            pool_available,
        });
        if let Some(core) = rearm_core {
            // Dropped-wakeup recovery: the timer re-arms at the earliest
            // reservation; past slots fire immediately (now + 1ns) and
            // dispatch in order, so no reservation is ever stranded.
            self.ensure_scheduled(core, now);
        }
    }

    /// Claims the pair's core for `work` starting no earlier than `now`;
    /// returns the span actually occupied.
    fn occupy_core(&mut self, core: usize, now: SimTime, work: SimDuration) -> (SimTime, SimTime) {
        let start = now.max(self.core_busy_until[core]);
        let end = start.saturating_add(work);
        self.cores[core].add_active_span(start, end);
        self.core_busy_until[core] = end;
        (start, end)
    }

    fn schedule_next_produce(&mut self, i: usize) {
        let pair = &self.pairs[i];
        if let Some(t) = pair.times.get(pair.next_idx) {
            // Owned times are truncated to the horizon at build time; the
            // guard makes shared (untruncated) fleet views behave
            // identically.
            if t < self.end {
                // Arrivals bypass the timer wheel: the calendar files the
                // pair's cursor head under a wheel-shared sequence number,
                // so the merged pop order is identical to the retired
                // one-wheel-event-per-item design (DESIGN.md §14).
                self.engine.schedule_arrival(t, i as u32);
            }
        }
    }

    // ------------------------------------------------------------------
    // Item-driven strategies (Mutex, Sem)
    // ------------------------------------------------------------------

    fn sync_factor(&self) -> f64 {
        match self.strategy {
            StrategyKind::Sem => SEM_SYNC_FACTOR,
            _ => MUTEX_SYNC_FACTOR,
        }
    }

    /// Occupies the pair's core for `work`, then records the latencies of
    /// everything staged in `scratch` plus the drain sample. Returns the
    /// span end. Shared tail of every drain path.
    fn finish_drain(
        &mut self,
        i: usize,
        now: SimTime,
        work: SimDuration,
        capacity: usize,
    ) -> SimTime {
        let core = self.pairs[i].core;
        let (_start, end) = self.occupy_core(core, now, work);
        // Deadline misses are an overload-layer observable only; keep
        // the counting branch out of default runs entirely.
        if let Some(ol) = &self.overload {
            let d = ol.cfg.deadline;
            let misses = self
                .scratch
                .iter()
                .filter(|&&p| end.saturating_since(p) > d)
                .count() as u64;
            self.pairs[i].metrics.deadline_misses += misses;
        }
        let pair = &mut self.pairs[i];
        for k in 0..self.scratch.len() {
            pair.metrics.record_latency(self.scratch[k], end);
        }
        pair.metrics
            .record_drain(self.scratch.len() as u64, capacity);
        end
    }

    fn item_drain(&mut self, i: usize, now: SimTime) {
        let factor = self.sync_factor();
        let n = self.pairs[i].backlog.len() as u64;
        self.trace.record(|| TraceEvent::Invoke {
            pair: i as u32,
            trigger: TraceTrigger::Item,
            batch: n,
            capacity: self.base_capacity as u64,
        });
        let pair = &mut self.pairs[i];
        self.scratch.clear();
        self.scratch.append(&mut pair.backlog);
        // The sleep-entry tail is part of the wake session: the thread
        // re-checks the queue before truly blocking, so arrivals in this
        // window extend the session instead of causing a fresh wakeup.
        let work = self
            .inflate_work(i, item_driven_work(&self.power, n, factor))
            .saturating_add(self.power.sleep_entry);
        let end = self.finish_drain(i, now, work, self.base_capacity);
        let pair = &mut self.pairs[i];
        pair.busy_until = end;
        if !pair.drain_pending {
            pair.drain_pending = true;
            self.engine.schedule_at(end, Ev::DrainDone { pair: i });
        }
    }

    fn item_produce(&mut self, i: usize, t: SimTime) {
        // The engine clock just advanced to this arrival's timestamp, so
        // `t` *is* `now` — reusing it keeps the per-item path free of
        // engine reads (same in the other `*_produce` handlers).
        let now = t;
        let pair = &mut self.pairs[i];
        pair.backlog.push(t);
        // A pending DrainDone owns the wake session: at an exact tie
        // (now == busy_until) the continuation event drains this item
        // without a fresh thread wakeup.
        if now >= pair.busy_until && !pair.drain_pending {
            pair.metrics.item_wakeups += 1;
            pair.metrics.invocations += 1;
            self.item_drain(i, now);
        }
    }

    fn item_drain_done(&mut self, i: usize, now: SimTime) {
        self.pairs[i].drain_pending = false;
        if !self.pairs[i].backlog.is_empty() {
            // Same wake session: the core span abuts the previous one, so
            // no wakeup or invocation is counted.
            self.item_drain(i, now);
        }
    }

    // ------------------------------------------------------------------
    // Batch strategies (BP, PBP, SPBP)
    // ------------------------------------------------------------------

    /// Drains the pair's batch buffer, occupies the core, and records
    /// metrics. Returns the batch size.
    fn batch_drain(&mut self, i: usize, now: SimTime, trigger: Trigger) -> u64 {
        let pair = &mut self.pairs[i];
        pair.metrics.invocations += 1;
        match trigger {
            Trigger::Scheduled => pair.metrics.scheduled_wakeups += 1,
            Trigger::Overflow => pair.metrics.overflow_wakeups += 1,
        }
        let buffer = pair.buffer.as_mut().expect("batch strategy has a buffer");
        let capacity = buffer.capacity();
        self.scratch.clear();
        let n = buffer.drain_into(&mut self.scratch) as u64;
        self.trace.record(|| TraceEvent::Invoke {
            pair: i as u32,
            trigger: trigger.into(),
            batch: n,
            capacity: capacity as u64,
        });
        let work = self.inflate_work(i, batch_work(&self.power, n));
        self.finish_drain(i, now, work, capacity);
        n
    }

    fn bp_produce(&mut self, i: usize, t: SimTime) {
        let now = t; // clock == arrival timestamp on the produce path
        let pair = &mut self.pairs[i];
        let buffer = pair.buffer.as_mut().expect("BP has a buffer");
        buffer
            .push(t)
            .unwrap_or_else(|_| unreachable!("BP drains at full, before overflow"));
        if buffer.is_full() {
            // "The consumer waits until the buffer is full": the producer
            // signals it — in the paper's terms every BP wakeup is an
            // overflow.
            self.batch_drain(i, now, Trigger::Overflow);
        }
    }

    fn periodic_produce(&mut self, i: usize, t: SimTime) {
        let now = t; // clock == arrival timestamp on the produce path
        let pair = &mut self.pairs[i];
        let buffer = pair
            .buffer
            .as_mut()
            .expect("periodic strategy has a buffer");
        if let Err(Overflow(item)) = buffer.push(t) {
            // Buffer filled before the period expired: unscheduled wakeup
            // ("it requires logic to handle the overflow of the buffer
            // before a period expires", §III-A).
            self.batch_drain(i, now, Trigger::Overflow);
            let pair = &mut self.pairs[i];
            pair.buffer
                .as_mut()
                .expect("buffer persists")
                .push(item)
                .unwrap_or_else(|_| unreachable!("buffer was just drained"));
        }
    }

    fn periodic_fire(&mut self, i: usize, now: SimTime) {
        // A dropped-wakeup fault on the pair's core swallows the drain
        // but not the clock: the timer chain survives the outage and
        // overflow handling covers the backlog meanwhile.
        if self.wake_dropped(self.pairs[i].core) {
            let core = self.pairs[i].core;
            self.count_swallowed(core);
        } else {
            self.batch_drain(i, now, Trigger::Scheduled);
        }
        let period = match self.strategy {
            StrategyKind::Pbp { period } | StrategyKind::Spbp { period } => period,
            _ => unreachable!("TimerFire only armed for periodic strategies"),
        };
        // Both periodic strategies target the same nominal grid ("the
        // consumer processes the batch within fixed time intervals",
        // §III-A); the only difference is how accurately the timer hits
        // it — nanosleep jitter for PBP, signal accuracy for SPBP. That
        // isolation mirrors the paper's attribution of the PBP/SPBP gap
        // entirely to timer accuracy.
        let nominal = {
            let pair = &mut self.pairs[i];
            pair.periodic_anchor = pair.periodic_anchor.saturating_add(period);
            // If jitter pushed us past whole periods, skip them.
            while pair.periodic_anchor <= now {
                pair.periodic_anchor = pair.periodic_anchor.saturating_add(period);
            }
            pair.periodic_anchor
        };
        let fire = self
            .timer
            .fire_time(nominal, self.engine.rng())
            .max(now.saturating_add(SimDuration::from_nanos(1)))
            .saturating_add(self.fault_timer_delay(self.pairs[i].core));
        if fire < self.end {
            self.engine.schedule_at(fire, Ev::TimerFire { pair: i });
        }
    }

    // ------------------------------------------------------------------
    // PBPL (§V)
    // ------------------------------------------------------------------

    /// Post-drain planning: predict, pick a slot (Eq. 8 backtracking),
    /// resize the elastic buffer, reserve, and re-arm the core timer.
    ///
    /// `allow_shrink` is false when planning after an overflow: the
    /// prediction just proved too low, so releasing capacity would invite
    /// the next overflow immediately — the paper's resizing exists to
    /// *convert* overflows into scheduled wakeups, not to multiply them.
    fn pbpl_plan(&mut self, i: usize, now: SimTime, allow_shrink: bool) {
        let cfg = self.pbpl_config().expect("PBPL planning").clone();
        // Degraded mode (prediction-error watchdog, DESIGN.md §10): the
        // estimator is demonstrably underestimating, so size with a
        // boosted margin and never give capacity back until the exit
        // criterion clears. Inert unless `degrade.enabled` — or overload
        // control is on, which reuses the watchdog as its degrade arm
        // (DESIGN.md §15).
        let watchdog = self.degrade_active(cfg.degrade.enabled);
        let degraded = watchdog && self.pairs[i].degraded;
        let margin = if degraded {
            cfg.resize_margin * cfg.degrade.margin_boost
        } else {
            cfg.resize_margin
        };
        let allow_shrink = allow_shrink && !degraded;
        if watchdog {
            if degraded {
                // Degraded floor: reclaim the pair's base entitlement
                // while the watchdog is tripped. A buffer shrunk to the
                // inter-burst average is what turns the next cluster
                // into a run of consecutive overflows, and because slot
                // selection already plans with `capacity.max(base)`,
                // restoring the entitlement never delays this pair's
                // scheduled wakeups — it only converts overflows back.
                let base = self.base_capacity;
                let mut cap = {
                    let buffer = self.pairs[i].buffer.as_mut().expect("PBPL has a buffer");
                    if buffer.capacity() < base {
                        buffer.grow_to(base)
                    } else {
                        buffer.capacity()
                    }
                };
                while cap < base {
                    // Emergency rebalance: the pool is dry (inflated
                    // post-burst predictors keep every pair in
                    // grow-wanting mode, so nothing ever comes back),
                    // and this pair is demonstrably overflowing below
                    // its fair share B₀. Reclaim the deficit from the
                    // *most* over-provisioned non-degraded neighbour —
                    // every victim keeps at least its own entitlement,
                    // so its wakeups are never brought forward past the
                    // fair-share plan, and modestly-sized neighbours
                    // (whose headroom is their burst protection) are
                    // left alone for as long as possible.
                    let mut victim: Option<(usize, usize)> = None;
                    for j in 0..self.pairs.len() {
                        // A neighbour that is *actively* overflowing keeps
                        // its surplus; one merely sitting out the watchdog's
                        // recovery window is fair game — its headroom is
                        // idle while this pair is drowning.
                        if j == i || self.pairs[j].consec_overflow > 0 {
                            continue;
                        }
                        let Some(buffer) = self.pairs[j].buffer.as_ref() else {
                            continue;
                        };
                        let surplus = buffer.capacity().saturating_sub(base);
                        if surplus > 0 && victim.is_none_or(|(s, _)| surplus > s) {
                            victim = Some((surplus, j));
                        }
                    }
                    let Some((surplus, j)) = victim else { break };
                    let give = surplus.min(base - cap);
                    let buffer = self.pairs[j].buffer.as_mut().expect("checked above");
                    buffer.shrink_to(buffer.capacity() - give);
                    let regrown = self.pairs[i]
                        .buffer
                        .as_mut()
                        .expect("PBPL has a buffer")
                        .grow_to(base);
                    if regrown == cap {
                        // The victim's occupancy floor blocked the
                        // shrink; no progress is possible this plan.
                        break;
                    }
                    cap = regrown;
                }
            }
            // Bounded-retry pool admission: a grow the squeezed pool
            // denied earlier is retried a few plans, then dropped —
            // degrade to current capacity rather than insist.
            if let Some((want, left)) = self.pairs[i].pending_grow {
                let buffer = self.pairs[i].buffer.as_mut().expect("PBPL has a buffer");
                if buffer.capacity() >= want || left == 0 {
                    self.pairs[i].pending_grow = None;
                } else {
                    let got = buffer.grow_to(want);
                    self.pairs[i].pending_grow = (got < want).then_some((want, left - 1));
                }
            }
        }
        let core = self.pairs[i].core;
        let rate = self.pairs[i]
            .predictor
            .as_ref()
            .expect("PBPL consumer has a predictor")
            .rate();
        // Selection plans with the consumer's *entitlement* — at least
        // its fair share B₀ — not its currently-shrunk allocation:
        // downsized space is a loan to the pool that `plan_resize` below
        // reclaims before the predicted items arrive. Planning with the
        // shrunk size would collapse the fill horizon after every latch
        // and degrade PBPL into per-slot polling.
        let capacity = self.pairs[i]
            .buffer
            .as_ref()
            .expect("PBPL consumer has a buffer")
            .capacity()
            .max(self.base_capacity);
        let track = *self.managers[core].track();
        let max_latency = self.pairs[i].max_latency;

        let mut choice = select_slot(
            &track,
            &self.managers[core],
            &self.cost,
            now,
            rate,
            capacity,
            max_latency,
            cfg.latching,
            Some(PairId(i)),
        );
        // §V-C: the overrun flag of the *initial* selection is what
        // triggers upsizing; report it even when the re-selection below
        // settles on a comfortable slot.
        let rate_overrun = choice.rate_overrun;
        if cfg.resizing {
            let buffer = self.pairs[i].buffer.as_mut().expect("checked above");
            if choice.rate_overrun {
                // §V-C upsizing: the predicted rate cannot be served by
                // the current buffer before any slot — request space to
                // survive one slot past the earliest (the paper's
                // Bᵢ = min(pool, r̂·(τ_next − τ_now)), with one slot of
                // headroom so there is something left to batch) and
                // re-plan with what the pool granted.
                let next_start = track.slot_start(track.next_slot_after(now) + 1);
                let want = overrun_target(rate, now, next_start, margin);
                let granted = buffer.grow_to(want);
                if watchdog && granted < want {
                    self.pairs[i].pending_grow = Some((want, cfg.degrade.grow_retries));
                }
                choice = select_slot(
                    &track,
                    &self.managers[core],
                    &self.cost,
                    now,
                    rate,
                    granted,
                    max_latency,
                    cfg.latching,
                    Some(PairId(i)),
                );
            }
            let buffer = self.pairs[i].buffer.as_mut().expect("checked above");
            // Size for the reservation *plus one slot of post-wake
            // refill*. Sizing to the reserved slot alone (the paper's
            // literal formula) interacts badly with latching: a latch
            // onto a near slot predicts few items, the buffer shrinks to
            // a handful, and the next burst overflows it — an
            // oscillation that converts scheduled wakeups back into
            // overflows, the opposite of the algorithm's goal.
            let predicted = predicted_fill_items(rate, now, track.slot_start(choice.slot + 1));
            // A zero prediction means the estimator has no signal yet (or
            // a genuinely silent producer); sizing to it would shrink the
            // buffer to nothing on bootstrap. Keep the allocation.
            if predicted > 0.0 {
                match plan_resize(buffer.capacity(), predicted, margin) {
                    ResizePlan::Shrink(target) if allow_shrink => {
                        buffer.shrink_to(target);
                    }
                    ResizePlan::Shrink(_) => {}
                    ResizePlan::Grow(target) => {
                        buffer.grow_to(target);
                    }
                    ResizePlan::Keep => {}
                }
            }
        }
        self.trace.record(|| TraceEvent::SlotSelect {
            pair: i as u32,
            core: core as u32,
            slot: choice.slot,
            latched: choice.latched,
            rate_overrun,
        });
        self.managers[core].reserve(choice.slot, PairId(i));
        self.ensure_scheduled(core, now);
    }

    fn pbpl_invoke(&mut self, i: usize, now: SimTime, trigger: Trigger) {
        let n = self.batch_drain(i, now, trigger);
        let pair = &mut self.pairs[i];
        let dt = now.saturating_since(pair.last_invocation);
        pair.last_invocation = now;
        pair.predictor
            .as_mut()
            .expect("PBPL consumer has a predictor")
            .observe(n, dt);
        let degrade = self.pbpl_config().expect("PBPL invoke").degrade;
        if self.degrade_active(degrade.enabled) {
            // Prediction-error watchdog: consecutive overflows trip
            // degraded mode; consecutive scheduled wakes clear it.
            let pair = &mut self.pairs[i];
            match trigger {
                Trigger::Overflow => {
                    pair.consec_scheduled = 0;
                    pair.consec_overflow += 1;
                    if pair.consec_overflow >= degrade.overflow_threshold {
                        pair.degraded = true;
                    }
                }
                Trigger::Scheduled => {
                    pair.consec_overflow = 0;
                    if pair.degraded {
                        pair.consec_scheduled += 1;
                        if pair.consec_scheduled >= degrade.recovery_wakes {
                            pair.degraded = false;
                            pair.consec_scheduled = 0;
                        }
                    }
                }
            }
        }
        self.pbpl_plan(i, now, trigger != Trigger::Overflow);
    }

    fn pbpl_produce(&mut self, i: usize, t: SimTime) {
        let now = t; // clock == arrival timestamp on the produce path
        let pair = &mut self.pairs[i];
        let buffer = pair.buffer.as_mut().expect("PBPL has a buffer");
        if let Err(Overflow(item)) = buffer.push(t) {
            self.pbpl_invoke(i, now, Trigger::Overflow);
            let pair = &mut self.pairs[i];
            pair.buffer
                .as_mut()
                .expect("buffer persists")
                .push(item)
                .unwrap_or_else(|_| unreachable!("buffer was just drained"));
            // The overflow woke the core regardless; let neighbours latch
            // onto it (§V-A group latching) and re-arm the slot timer.
            // The overflowing consumer itself just drained — excluding it
            // avoids a zero-dt double invocation when its buffer is tiny.
            let core = self.pairs[i].core;
            self.pbpl_piggyback(core, now, Some(i));
            self.ensure_scheduled(core, now);
        }
    }

    fn slot_wake(&mut self, core: usize, slot: SlotIndex, now: SimTime) {
        self.slot_timer[core] = None;
        if self.wake_dropped(core) {
            // The scheduled wakeup is swallowed: no dispatch, no re-arm.
            // Reservations stay in the book; recovery (or overflow wakes
            // meanwhile, or the end-of-run flush) picks them back up.
            self.count_swallowed(core);
            return;
        }
        let due = self.managers[core].take_due(slot);
        for consumer in due {
            self.pbpl_invoke(consumer.0, now, Trigger::Scheduled);
        }
        self.pbpl_piggyback(core, now, None);
        self.ensure_scheduled(core, now);
    }

    /// Group latching on an already-awake core: "if the CPU is already
    /// awake at a specific point in time, then it is beneficial to
    /// schedule consumers to be invoked at that same time" (§V-A). Any
    /// consumer on this core that has accumulated a meaningful batch
    /// drains now for free — w = 0 in ρ — which both cancels its own
    /// pending wakeup (its re-reservation moves a full buffer-fill into
    /// the future) and lets it shrink toward an empty-buffer prediction,
    /// feeding the pool that bursting neighbours draw on.
    fn pbpl_piggyback(&mut self, core: usize, now: SimTime, exclude: Option<usize>) {
        let Some(cfg) = self.pbpl_config() else {
            return;
        };
        if !cfg.latching || !cfg.piggyback {
            return;
        }
        for k in 0..self.pairs_by_core[core].len() {
            let i = self.pairs_by_core[core][k];
            if Some(i) == exclude {
                continue;
            }
            let pair = &self.pairs[i];
            let Some(buffer) = pair.buffer.as_ref() else {
                continue;
            };
            if buffer.len() * 8 < buffer.capacity() {
                continue; // not enough batched to be worth a dispatch
            }
            self.pbpl_invoke(i, now, Trigger::Scheduled);
        }
    }

    /// Arms (or re-targets) the core's single timer at its earliest
    /// reserved slot — "the core manager will schedule the next slot with
    /// at least one reservation" (§V-B).
    fn ensure_scheduled(&mut self, core: usize, now: SimTime) {
        if self.wake_dropped(core) {
            // The core's timer hardware is "dead" for the fault window:
            // nothing new gets armed (an already-armed timer is swallowed
            // at fire time). Recovery re-enters here via `fault_end`.
            return;
        }
        let want = self.managers[core].first_reserved();
        let current = self.slot_timer[core];
        match (current, want) {
            (Some((_, s)), Some(w)) if s == w => {}
            (current, Some(w)) => {
                if let Some((id, _)) = current {
                    self.engine.cancel(id);
                }
                let nominal = self.managers[core].track().slot_start(w);
                let fire = self
                    .timer
                    .fire_time(nominal, self.engine.rng())
                    .max(now.saturating_add(SimDuration::from_nanos(1)))
                    .saturating_add(self.fault_timer_delay(core));
                if fire >= self.end {
                    // The run ends before this slot; the end-of-run flush
                    // drains whatever would have been batched there.
                    self.slot_timer[core] = None;
                    return;
                }
                let id = self
                    .engine
                    .schedule_at(fire, Ev::SlotWake { core, slot: w });
                self.slot_timer[core] = Some((id, w));
            }
            (Some((id, _)), None) => {
                self.engine.cancel(id);
                self.slot_timer[core] = None;
            }
            (None, None) => {}
        }
    }

    // ------------------------------------------------------------------
    // Busy strategies (BW, Yield)
    // ------------------------------------------------------------------

    fn busy_produce(&mut self, i: usize, t: SimTime) {
        // Spinning consumers observe items immediately.
        let pair = &mut self.pairs[i];
        pair.metrics.items_consumed += 1;
        pair.metrics.record_latency(t, t);
        self.trace.record(|| TraceEvent::Invoke {
            pair: i as u32,
            trigger: TraceTrigger::Item,
            batch: 1,
            capacity: 0,
        });
    }

    // ------------------------------------------------------------------
    // Overload control (DESIGN.md §15)
    // ------------------------------------------------------------------

    /// Items currently buffered at the pair (backlog or batch buffer),
    /// whichever the strategy uses.
    fn occupancy(&self, i: usize) -> u64 {
        let pair = &self.pairs[i];
        pair.backlog.len() as u64 + pair.buffer.as_ref().map_or(0, |b| b.len() as u64)
    }

    /// Whether PBPL's prediction-error watchdog machinery is live. The
    /// overload layer reuses it as its degrade arm (ISSUE: "degrade for
    /// any strategy"): enabling overload control activates the watchdog
    /// with the strategy's `DegradeConfig` knobs even when
    /// `degrade.enabled` is false. Inert when overload is `None`.
    fn degrade_active(&self, degrade_enabled: bool) -> bool {
        degrade_enabled || self.overload.is_some()
    }

    /// How far behind the pair's consumer is at `now`: the gap from
    /// `now` to its service horizon — the later of the consumer's own
    /// busy spell (item-driven strategies) and its core's busy horizon
    /// (batching strategies occupy the core directly). Zero whenever the
    /// consumer could start serving a new item immediately, which is the
    /// healthy steady state under any sustainable load.
    fn service_lag_ns(&self, i: usize, now: SimTime) -> u64 {
        let pair = &self.pairs[i];
        let horizon = pair.busy_until.max(self.core_busy_until[pair.core]);
        horizon.saturating_since(now).as_nanos()
    }

    /// Admission decision for one arrival (only called when overload
    /// control is enabled). Applies the trip/clear hysteresis over the
    /// measured service lag, emits the window-edge events, and returns
    /// whether the item is admitted. An item admitted while the lag
    /// already exceeds the deadline cannot *start* service inside the
    /// deadline — shedding it sheds a guaranteed miss, never viable
    /// work.
    fn overload_admit(&mut self, i: usize, t: SimTime) -> bool {
        let occupancy = self.occupancy(i);
        let lag_ns = self.service_lag_ns(i, t);
        let ol = self.overload.as_mut().expect("admission requires overload");
        let cfg = ol.cfg;
        let fleet_shed = ol.fleet_shed;
        let st = &mut ol.admission[i];
        let deadline_ns = cfg.deadline.as_nanos();
        if st.in_overload {
            // Clear hysteresis: the lag must sit well below the
            // deadline (clear_pct of it) for clear_arrivals consecutive
            // arrivals. A *self-tripped* window clears on that measured
            // recovery alone — holding it hostage to the fleet latch
            // would deadlock (de-escalation needs the self-tripped
            // share to fall, which needs clears). Only *escalated*
            // windows stay latched while the fleet sheds: their pairs
            // never tripped, so their low lag says nothing about the
            // correlated overload that opened them.
            let under = lag_ns <= deadline_ns.saturating_mul(cfg.clear_pct as u64) / 100;
            if under {
                st.consec_under += 1;
            } else {
                st.consec_under = 0;
            }
            if st.consec_under >= cfg.clear_arrivals && !(fleet_shed && st.escalated) {
                st.in_overload = false;
                st.escalated = false;
                st.consec_under = 0;
                st.consec_over = 0;
                let shed = std::mem::take(&mut st.shed_in_window);
                self.trace.record(|| TraceEvent::OverloadCleared {
                    pair: i as u32,
                    shed,
                });
                true
            } else {
                st.shed_in_window += 1;
                false
            }
        } else {
            let over = lag_ns > deadline_ns;
            if over {
                st.consec_over += 1;
            } else {
                st.consec_over = 0;
            }
            if st.consec_over >= cfg.trip_arrivals {
                st.in_overload = true;
                st.escalated = false;
                st.consec_over = 0;
                st.consec_under = 0;
                // The tripping arrival itself is shed.
                st.shed_in_window = 1;
                self.pairs[i].metrics.overload_windows += 1;
                self.trace.record(|| TraceEvent::OverloadEntered {
                    pair: i as u32,
                    occupancy,
                    escalated: false,
                });
                false
            } else {
                true
            }
        }
    }

    /// Fleet-supervisor tick: detect stuck pairs (no consume progress
    /// across `stuck_ticks` ticks while items sit buffered) and kick
    /// them with a strategy-appropriate emergency drain; escalate
    /// shedding fleet-wide when the self-tripped share reaches
    /// `escalate_pct` of the fleet, de-escalate at half that.
    fn supervisor_tick(&mut self, now: SimTime) {
        let m = self.pairs.len();
        let mut stuck: Vec<usize> = Vec::new();
        let mut tripped = 0usize;
        let Some(ol) = self.overload.as_mut() else {
            return;
        };
        let cfg = ol.cfg;
        for i in 0..m {
            let pair = &self.pairs[i];
            let occupancy =
                pair.backlog.len() as u64 + pair.buffer.as_ref().map_or(0, |b| b.len() as u64);
            let consumed = pair.metrics.items_consumed;
            if occupancy > 0 && consumed == ol.last_consumed[i] {
                ol.stuck_ticks[i] += 1;
            } else {
                ol.stuck_ticks[i] = 0;
            }
            ol.last_consumed[i] = consumed;
            if ol.stuck_ticks[i] >= cfg.stuck_ticks {
                ol.stuck_ticks[i] = 0;
                stuck.push(i);
            }
            let st = &ol.admission[i];
            if st.in_overload && !st.escalated {
                tripped += 1;
            }
        }
        // Correlated-overload escalation. Only self-tripped windows
        // count toward the census, so escalation cannot sustain itself;
        // the latch opens again once the underlying overload drains.
        if !ol.fleet_shed && m > 1 && tripped * 100 >= cfg.escalate_pct as usize * m {
            ol.fleet_shed = true;
            for i in 0..m {
                let st = &mut ol.admission[i];
                if !st.in_overload {
                    st.in_overload = true;
                    st.escalated = true;
                    st.consec_over = 0;
                    st.consec_under = 0;
                    st.shed_in_window = 0;
                    let occupancy = self.pairs[i].backlog.len() as u64
                        + self.pairs[i].buffer.as_ref().map_or(0, |b| b.len() as u64);
                    self.pairs[i].metrics.overload_windows += 1;
                    self.trace.record(|| TraceEvent::OverloadEntered {
                        pair: i as u32,
                        occupancy,
                        escalated: true,
                    });
                }
            }
        } else if ol.fleet_shed && tripped * 100 * 2 < cfg.escalate_pct as usize * m {
            ol.fleet_shed = false;
            for i in 0..m {
                let st = &mut ol.admission[i];
                if st.in_overload && st.escalated {
                    st.in_overload = false;
                    st.escalated = false;
                    st.consec_over = 0;
                    st.consec_under = 0;
                    let shed = std::mem::take(&mut st.shed_in_window);
                    self.trace.record(|| TraceEvent::OverloadCleared {
                        pair: i as u32,
                        shed,
                    });
                }
            }
        }
        // Emergency drains for stuck pairs. Strategy-agnostic: whatever
        // the pair buffers gets force-dispatched now; PBPL additionally
        // trips its degrade watchdog so subsequent plans run with the
        // boosted margin and emergency rebalance.
        for i in stuck {
            match self.strategy {
                StrategyKind::Mutex | StrategyKind::Sem => {
                    let pair = &self.pairs[i];
                    if !pair.backlog.is_empty() && !pair.drain_pending && now >= pair.busy_until {
                        let pair = &mut self.pairs[i];
                        pair.metrics.item_wakeups += 1;
                        pair.metrics.invocations += 1;
                        self.item_drain(i, now);
                    }
                }
                StrategyKind::Bp | StrategyKind::Pbp { .. } | StrategyKind::Spbp { .. } => {
                    if self.pairs[i].buffer.as_ref().is_some_and(|b| !b.is_empty()) {
                        self.batch_drain(i, now, Trigger::Overflow);
                    }
                }
                StrategyKind::Pbpl(_) => {
                    if self.pairs[i].buffer.as_ref().is_some_and(|b| !b.is_empty()) {
                        self.pairs[i].degraded = true;
                        self.pbpl_invoke(i, now, Trigger::Overflow);
                    }
                }
                StrategyKind::BusyWait | StrategyKind::Yield => {}
            }
        }
        let next = now.saturating_add(cfg.supervisor_period);
        if next < self.end {
            self.engine.schedule_at(next, Ev::SupervisorTick);
        }
    }

    // ------------------------------------------------------------------
    // Driver
    // ------------------------------------------------------------------

    /// Handles a popped workload arrival for `pair` at time `t` (the
    /// engine clock already sits at `t`). This is the hot path — at
    /// fleet scale 85–95 % of all pops land here — so it takes the
    /// popped timestamp directly instead of re-reading the cursor or
    /// the engine clock.
    fn produce(&mut self, pair: usize, t: SimTime) {
        debug_assert_eq!(
            self.pairs[pair].times.get(self.pairs[pair].next_idx),
            Some(t),
            "arrival time must match the pair's cursor head"
        );
        self.pairs[pair].next_idx += 1;
        self.pairs[pair].metrics.items_produced += 1;
        self.trace
            .record(|| TraceEvent::Produce { pair: pair as u32 });
        // Admission control (DESIGN.md §15): a shed item still counts as
        // produced (the `Produce` event above already fired) but never
        // reaches the strategy — conservation becomes
        // `produced == consumed + shed`. The calendar pop ledger is
        // untouched: the arrival was popped either way, and the next one
        // is scheduled below exactly as for an admitted item.
        if self.overload.is_some() && !self.overload_admit(pair, t) {
            self.pairs[pair].metrics.items_shed += 1;
            self.trace
                .record(|| TraceEvent::ItemShed { pair: pair as u32 });
            self.schedule_next_produce(pair);
            return;
        }
        match self.strategy {
            StrategyKind::BusyWait | StrategyKind::Yield => self.busy_produce(pair, t),
            StrategyKind::Mutex | StrategyKind::Sem => self.item_produce(pair, t),
            StrategyKind::Bp => self.bp_produce(pair, t),
            StrategyKind::Pbp { .. } | StrategyKind::Spbp { .. } => self.periodic_produce(pair, t),
            StrategyKind::Pbpl(_) => self.pbpl_produce(pair, t),
        }
        self.schedule_next_produce(pair);
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::DrainDone { pair } => {
                let now = self.engine.now();
                self.item_drain_done(pair, now);
            }
            Ev::TimerFire { pair } => {
                let now = self.engine.now();
                self.periodic_fire(pair, now);
            }
            Ev::SlotWake { core, slot } => {
                let now = self.engine.now();
                self.slot_wake(core, slot, now);
            }
            Ev::FaultStart { f } => self.fault_start(f),
            Ev::FaultEnd { f } => self.fault_end(f),
            Ev::SupervisorTick => {
                let now = self.engine.now();
                self.supervisor_tick(now);
            }
        }
    }

    fn run(mut self) -> RunMetrics {
        // Fault windows: both edges are plain events at integer sim-time.
        // Edges at or past end-of-run are swept up by the cleanup below.
        if let Some(fr) = &self.faults {
            let edges: Vec<(usize, u64, u64)> = fr
                .faults
                .iter()
                .enumerate()
                .map(|(f, fault)| (f, fault.start_ns, fault.end_ns))
                .collect();
            for (f, start_ns, end_ns) in edges {
                if start_ns >= end_ns {
                    continue;
                }
                let start = SimTime::from_nanos(start_ns);
                if start < self.end {
                    self.engine.schedule_at(start, Ev::FaultStart { f });
                    let end = SimTime::from_nanos(end_ns);
                    if end < self.end {
                        self.engine.schedule_at(end, Ev::FaultEnd { f });
                    }
                }
            }
        }
        // Fleet supervisor: one periodic wheel event, armed only when
        // overload control is enabled — default runs never see it.
        if let Some(ol) = &self.overload {
            let first = SimTime::ZERO.saturating_add(ol.cfg.supervisor_period);
            if first < self.end {
                self.engine.schedule_at(first, Ev::SupervisorTick);
            }
        }
        // Strategy-specific setup.
        match &self.strategy {
            StrategyKind::BusyWait => {
                let occupied: Vec<usize> = self.occupied_cores();
                for c in occupied {
                    self.cores[c].add_active_span(SimTime::ZERO, self.end);
                    self.core_busy_until[c] = self.end;
                }
            }
            StrategyKind::Yield => {
                let occupied: Vec<usize> = self.occupied_cores();
                for c in occupied {
                    let mut t = SimTime::ZERO;
                    let busy = YIELD_TICK.saturating_sub(YIELD_IDLE_PER_TICK);
                    while t < self.end {
                        let span_end = (t + busy).min(self.end);
                        self.cores[c].add_active_span(t, span_end);
                        t += YIELD_TICK;
                    }
                    self.core_busy_until[c] = self.end;
                }
            }
            StrategyKind::Pbp { period } | StrategyKind::Spbp { period } => {
                let period = *period;
                for i in 0..self.pairs.len() {
                    self.pairs[i].periodic_anchor = SimTime::ZERO + period;
                    let fire = self
                        .timer
                        .fire_time(SimTime::ZERO + period, self.engine.rng());
                    self.engine.schedule_at(fire, Ev::TimerFire { pair: i });
                }
            }
            StrategyKind::Pbpl(_) => {
                for i in 0..self.pairs.len() {
                    self.pbpl_plan(i, SimTime::ZERO, true);
                }
            }
            _ => {}
        }
        for i in 0..self.pairs.len() {
            self.schedule_next_produce(i);
        }

        while let Some((t, popped)) = self.engine.next_merged_before(self.end) {
            match popped {
                Popped::Arrival(pair) => self.produce(pair as usize, t),
                Popped::Timer(ev) => self.handle(ev),
            }
        }
        self.engine.advance_to(self.end);

        // Faults still active at end-of-run recover now, *before* the
        // flush and buffer teardown: squeezed pool units go back and the
        // `FaultRecovered` events precede every `BufferDestroy`, so the
        // oracle's conservation ledger balances at each step.
        if let Some(fr) = &self.faults {
            let open: Vec<usize> = (0..fr.faults.len()).filter(|&f| fr.active[f]).collect();
            for f in open {
                self.fault_end(f);
            }
        }

        // Overload windows still open at end-of-run force-clear now,
        // before the flush: every `OverloadEntered` gets its matching
        // `OverloadCleared` and the per-window shed tally closes
        // (mirrors the fault force-recovery above).
        if let Some(ol) = self.overload.as_mut() {
            for i in 0..ol.admission.len() {
                let st = &mut ol.admission[i];
                if st.in_overload {
                    st.in_overload = false;
                    st.escalated = false;
                    let shed = std::mem::take(&mut st.shed_in_window);
                    self.trace.record(|| TraceEvent::OverloadCleared {
                        pair: i as u32,
                        shed,
                    });
                }
            }
        }

        // End-of-run flush: account for items still buffered so the
        // conservation invariant (produced == consumed + shed) holds. No
        // wakeups or core spans are charged — the run is over.
        let deadline = self.overload.as_ref().map(|ol| ol.cfg.deadline);
        for (i, pair) in self.pairs.iter_mut().enumerate() {
            let mut leftovers = Vec::new();
            pair.backlog.drain(..).for_each(|t| leftovers.push(t));
            if let Some(buffer) = pair.buffer.as_mut() {
                buffer.drain_into(&mut leftovers);
            }
            if !leftovers.is_empty() {
                for &t in &leftovers {
                    pair.metrics.record_latency(t, self.end);
                }
                if let Some(d) = deadline {
                    let end = self.end;
                    pair.metrics.deadline_misses += leftovers
                        .iter()
                        .filter(|&&t| end.saturating_since(t) > d)
                        .count() as u64;
                }
                pair.metrics.items_consumed += leftovers.len() as u64;
                self.trace.record(|| TraceEvent::Flush {
                    pair: i as u32,
                    drained: leftovers.len() as u64,
                });
            }
        }

        let end = self.end;
        let slot_fires: u64 = self.managers.iter().map(|m| m.scheduled_wakeups()).sum();
        let reports: Vec<_> = self.cores.into_iter().map(|c| c.finish(end)).collect();
        let governor = self.governor;
        let mut energy = account_cores(&reports, &self.power, || governor.build());
        if matches!(self.strategy, StrategyKind::Yield) {
            // §III-C: DVFS steps the clock down under constant yielding;
            // discount the active-time energy accordingly.
            let active_secs: f64 = reports.iter().map(|r| r.active_time.as_secs_f64()).sum();
            energy.energy_j -= active_secs * self.power.active_power_w * (1.0 - YIELD_DVFS_FACTOR);
        }
        let meter = Meter::aggregate(&reports);
        let items_consumed = self.pairs.iter().map(|p| p.metrics.items_consumed).sum();
        let items_produced = self.pairs.iter().map(|p| p.metrics.items_produced).sum();
        let items_shed: u64 = self.pairs.iter().map(|p| p.metrics.items_shed).sum();
        let mut scheduler = self.engine.queue_stats();
        // Stamped by the Sim at teardown, like the engine stamps the
        // arrival-calendar counters: sheds happen after the pop, so they
        // sit outside the ledger equation but ride the same struct.
        scheduler.items_shed = items_shed;
        // Every scheduled event (wheel + calendar) must be accounted for:
        // popped, cancelled, or still pending at teardown (events past
        // `end`, e.g. a DrainDone continuation of the final drain).
        // Silent losses would mean the wheel dropped work.
        assert!(
            scheduler.ledger_balanced(),
            "scheduler event ledger out of balance: {scheduler:?}"
        );
        RunMetrics {
            strategy: self.strategy.name().to_string(),
            duration: end.saturating_since(SimTime::ZERO),
            pairs: self.pairs.into_iter().map(|p| p.metrics).collect(),
            core_reports: reports,
            energy,
            meter,
            items_consumed,
            items_produced,
            items_shed,
            slot_fires,
            scheduler,
        }
    }

    fn occupied_cores(&self) -> Vec<usize> {
        let mut seen = vec![false; self.cores.len()];
        for p in &self.pairs {
            seen[p.core] = true;
        }
        seen.iter()
            .enumerate()
            .filter_map(|(i, &s)| s.then_some(i))
            .collect()
    }
}

/// Namespace entry point: `Experiment::builder()…run()`.
pub struct Experiment;

impl Experiment {
    /// Starts configuring an experiment run.
    pub fn builder() -> ExperimentBuilder {
        ExperimentBuilder::default()
    }
}

/// Explicit traces handed to the builder: owned, or a fleet shared with
/// other concurrent runs (sweep cells differing only in strategy).
#[derive(Debug, Clone)]
enum ExplicitTraces {
    Owned(Vec<Trace>),
    Shared(Arc<Vec<Trace>>),
}

impl ExplicitTraces {
    fn as_slice(&self) -> &[Trace] {
        match self {
            ExplicitTraces::Owned(ts) => ts,
            ExplicitTraces::Shared(ts) => ts,
        }
    }
}

/// Builder for a single simulation run.
#[derive(Debug, Clone)]
pub struct ExperimentBuilder {
    pairs: usize,
    cores: usize,
    duration: SimDuration,
    strategy: StrategyKind,
    trace_cfg: WorldCupConfig,
    explicit_traces: Option<ExplicitTraces>,
    seed: u64,
    power: PowerModel,
    buffer_capacity: usize,
    governor: GovernorKind,
    max_latencies: Option<Vec<SimDuration>>,
    trace_events: TraceHandle,
    faults: FaultPlan,
    shards: usize,
    overload: OverloadConfig,
}

impl Default for ExperimentBuilder {
    fn default() -> Self {
        ExperimentBuilder {
            pairs: 2,
            cores: 2,
            duration: SimDuration::from_secs(1),
            strategy: StrategyKind::pbpl_default(),
            trace_cfg: WorldCupConfig::paper_default(),
            explicit_traces: None,
            seed: 42,
            power: PowerModel::exynos_like(),
            buffer_capacity: 50,
            governor: GovernorKind::Oracle,
            max_latencies: None,
            trace_events: TraceHandle::disabled(),
            faults: FaultPlan::empty(),
            shards: 1,
            overload: OverloadConfig::default(),
        }
    }
}

impl ExperimentBuilder {
    /// Number of producer-consumer pairs M.
    pub fn pairs(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one pair");
        self.pairs = n;
        self
    }

    /// Number of cores A. Consumers are assigned round-robin (`i mod A`).
    pub fn cores(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one core");
        self.cores = n;
        self
    }

    /// Run length (the paper uses 50 s).
    pub fn duration(mut self, d: SimDuration) -> Self {
        assert!(!d.is_zero(), "duration must be nonzero");
        self.duration = d;
        self
    }

    /// The consumer strategy under test.
    pub fn strategy(mut self, s: StrategyKind) -> Self {
        self.strategy = s;
        self
    }

    /// Workload configuration; the horizon is overridden by
    /// [`ExperimentBuilder::duration`].
    pub fn trace(mut self, cfg: WorldCupConfig) -> Self {
        self.trace_cfg = cfg;
        self
    }

    /// Explicit per-pair traces (overrides the generator). Must supply
    /// exactly one trace per pair at run time.
    pub fn traces(mut self, traces: Vec<Trace>) -> Self {
        self.explicit_traces = Some(ExplicitTraces::Owned(traces));
        self
    }

    /// Explicit per-pair traces shared with other runs (overrides the
    /// generator). Bit-identical to [`ExperimentBuilder::traces`] on the
    /// same data, but zero-copy: sweep cells that differ only in strategy
    /// read one fleet instead of cloning it per cell — at M = 1000 the
    /// clone is tens of megabytes per cell (DESIGN.md §13).
    pub fn shared_traces(mut self, traces: Arc<Vec<Trace>>) -> Self {
        self.explicit_traces = Some(ExplicitTraces::Shared(traces));
        self
    }

    /// RNG seed; also seeds the workload generator.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Platform power model.
    pub fn power(mut self, model: PowerModel) -> Self {
        self.power = model;
        self
    }

    /// Per-pair base buffer capacity B₀ (the paper sweeps 25/50/100).
    /// The PBPL global pool is sized B₀·M per §V-C.
    pub fn buffer_capacity(mut self, b: usize) -> Self {
        assert!(b > 0, "buffer capacity must be nonzero");
        self.buffer_capacity = b;
        self
    }

    /// Idle governor used by energy accounting (default: post-hoc
    /// oracle; `Menu` charges real energy for mispredicted idles).
    pub fn governor(mut self, g: GovernorKind) -> Self {
        self.governor = g;
        self
    }

    /// Per-consumer maximum response latencies (PBPL; one per pair).
    /// When set, the slot size follows the paper's default — "the
    /// minimum of all maximum acceptable response latencies" — and each
    /// consumer plans within its own bound instead of the shared
    /// `PbplConfig::max_latency`.
    pub fn max_latencies(mut self, latencies: Vec<SimDuration>) -> Self {
        assert!(
            latencies.iter().all(|l| !l.is_zero()),
            "latency bounds must be nonzero"
        );
        self.max_latencies = Some(latencies);
        self
    }

    /// Attaches a structured event-trace handle: the run emits typed
    /// events (produce/invoke/flush, core spans, slot reservations,
    /// elastic-pool transactions) into its recorder. Purely
    /// observational — metrics are bit-identical with or without it.
    pub fn record_events(mut self, handle: TraceHandle) -> Self {
        self.trace_events = handle;
        self
    }

    /// Number of coordination shards S: the core managers and the PBPL
    /// global pool split their state S ways, with pairs hashed to shards
    /// by index. Semantically inert by contract — results (energy bits,
    /// wakeups, trace events) are identical for every S ≥ 1, which CI's
    /// scale job byte-checks; larger S exists to cut contention at large
    /// M. Default 1.
    pub fn shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        self.shards = shards;
        self
    }

    /// Injects a deterministic fault plan (DESIGN.md §10). Workload
    /// faults rewrite the production traces before the run; runtime
    /// faults fire as events at their integer sim-time window edges. The
    /// empty plan is the default and leaves the run bit-identical to a
    /// build without fault injection.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Configures the overload-control layer (DESIGN.md §15): deadline-
    /// aware admission with ledgered load shedding, plus the fleet
    /// supervisor. The default (`enabled: false`) is the hard-required
    /// inert path: runs are bit-identical to a build without the layer,
    /// and no `ItemShed`/`OverloadEntered`/`OverloadCleared` events can
    /// appear. When enabled, conservation weakens to
    /// `produced == consumed + shed` and PBPL's degrade watchdog runs
    /// regardless of `degrade.enabled`.
    pub fn overload(mut self, cfg: OverloadConfig) -> Self {
        self.overload = cfg;
        self
    }

    /// Runs the experiment and returns its metrics.
    pub fn run(self) -> RunMetrics {
        let end = SimTime::ZERO + self.duration;
        // Fault-free shared fleets are consumed zero-copy: the horizon
        // guard in `schedule_next_produce` substitutes for physical
        // truncation, so nothing needs materialising. Every other source
        // — owned traces, generated workloads, or any run with workload
        // faults to rewrite — builds owned, truncated timestamp vectors
        // exactly as before.
        let times_by_pair: Vec<PairTimes> = match &self.explicit_traces {
            Some(ExplicitTraces::Shared(fleet)) if self.faults.is_empty() => {
                assert_eq!(fleet.len(), self.pairs, "one trace per pair");
                (0..self.pairs)
                    .map(|i| PairTimes::Shared(Arc::clone(fleet), i))
                    .collect()
            }
            Some(src) => {
                let ts = src.as_slice();
                assert_eq!(ts.len(), self.pairs, "one trace per pair");
                ts.iter()
                    .enumerate()
                    .map(|(i, t)| {
                        let mut times = t.truncate(end).into_times();
                        if !self.faults.is_empty() {
                            self.faults.apply_workload_faults(i as u32, &mut times, end);
                        }
                        PairTimes::Owned(times)
                    })
                    .collect()
            }
            None => {
                let mut cfg = self.trace_cfg.clone();
                cfg.horizon = end;
                let base = cfg.generate(self.seed.wrapping_add(0x7ace));
                // §VI-A: "each consumer is shifted one Mth further into
                // the dataset".
                (0..self.pairs)
                    .map(|i| {
                        let mut times = base.phase_shift(i as f64 / self.pairs as f64).into_times();
                        if !self.faults.is_empty() {
                            self.faults.apply_workload_faults(i as u32, &mut times, end);
                        }
                        PairTimes::Owned(times)
                    })
                    .collect()
            }
        };

        if let Some(lats) = &self.max_latencies {
            assert_eq!(
                lats.len(),
                self.pairs,
                "one latency bound per pair (got {} for {} pairs)",
                lats.len(),
                self.pairs
            );
        }
        if let StrategyKind::Pbpl(cfg) = &self.strategy {
            assert!(
                cfg.slot <= cfg.max_latency,
                "PBPL slot Δ ({}) exceeds the max response latency ({}); \
                 the paper derives Δ FROM the latency bounds (Δ = min max-latency), \
                 so a coarser track cannot honour them",
                cfg.slot,
                cfg.max_latency
            );
        }
        let is_batching = self.strategy.is_batching();
        let pool = is_batching
            .then(|| GlobalPool::with_shards(self.buffer_capacity * self.pairs, self.shards));
        let pbpl_cfg = match &self.strategy {
            StrategyKind::Pbpl(cfg) => Some(cfg.clone()),
            _ => None,
        };

        let pairs: Vec<PairState> = times_by_pair
            .into_iter()
            .enumerate()
            .map(|(i, times)| {
                let buffer = pool.as_ref().map(|p| {
                    let min_cap = match &pbpl_cfg {
                        Some(cfg) => ((self.buffer_capacity as f64 * cfg.min_capacity_frac).ceil()
                            as usize)
                            .clamp(1, self.buffer_capacity),
                        // Fixed-size strategies never resize anyway.
                        None => self.buffer_capacity,
                    };
                    let mut buf = ElasticBuffer::with_min_at(
                        Arc::clone(p),
                        self.buffer_capacity,
                        min_cap,
                        i % self.shards,
                    )
                    .expect("pool sized as B0*M covers every base reservation");
                    buf.set_trace(self.trace_events.clone(), i as u32);
                    buf
                });
                let max_latency = match (&self.max_latencies, &pbpl_cfg) {
                    (Some(lats), _) => lats[i],
                    (None, Some(cfg)) => cfg.max_latency,
                    (None, None) => SimDuration::MAX,
                };
                PairState {
                    max_latency,
                    core: i % self.cores,
                    times,
                    next_idx: 0,
                    metrics: PairMetrics::new(PairId(i)),
                    busy_until: SimTime::ZERO,
                    drain_pending: false,
                    backlog: Vec::new(),
                    buffer,
                    predictor: pbpl_cfg.as_ref().map(|cfg| cfg.predictor.build(0.0)),
                    last_invocation: SimTime::ZERO,
                    periodic_anchor: SimTime::ZERO,
                    consec_overflow: 0,
                    consec_scheduled: 0,
                    degraded: false,
                    pending_grow: None,
                }
            })
            .collect();

        // §V-A: "the default slot size is equal to the minimum of all
        // maximum acceptable response latencies" — honoured whenever
        // explicit per-consumer bounds are given.
        let delta = match (&self.max_latencies, &pbpl_cfg) {
            (Some(lats), Some(_)) => lats
                .iter()
                .copied()
                .min()
                .expect("at least one pair exists"),
            (None, Some(cfg)) => cfg.slot,
            _ => SimDuration::from_millis(1),
        };
        let track = SlotTrack::new(delta);
        let managers = (0..self.cores)
            .map(|c| {
                let mut m = ShardedCoreManager::new(track, self.shards);
                m.set_trace(self.trace_events.clone(), c as u32);
                m
            })
            .collect();

        let mut pairs_by_core = vec![Vec::new(); self.cores];
        for (i, p) in pairs.iter().enumerate() {
            pairs_by_core[p.core].push(i);
        }
        let pool_shards = pool.as_ref().map_or(1, |p| p.shards());
        let sim = Sim {
            pairs_by_core,
            governor: self.governor,
            timer: self.strategy.timer_model(),
            cost: CostModel::from_power_model(&self.power),
            strategy: self.strategy,
            power: self.power,
            end,
            engine: {
                let mut engine = Engine::new(self.seed);
                engine.set_trace(self.trace_events.clone());
                engine
            },
            cores: (0..self.cores)
                .map(|c| {
                    let mut core = Core::new(CoreId(c));
                    core.set_trace(self.trace_events.clone());
                    core
                })
                .collect(),
            core_busy_until: vec![SimTime::ZERO; self.cores],
            managers,
            slot_timer: vec![None; self.cores],
            pairs,
            base_capacity: self.buffer_capacity,
            scratch: Vec::new(),
            _pool: pool,
            faults: (!self.faults.is_empty()).then(|| FaultRuntime {
                active: vec![false; self.faults.len()],
                work_x1000: vec![1000; self.pairs],
                timer_delay_ns: vec![0; self.cores],
                drop_wake: vec![0; self.cores],
                swallowed: vec![0; self.cores],
                squeezed: vec![vec![0; pool_shards]; self.faults.len()],
                faults: self.faults.faults().to_vec(),
            }),
            overload: self.overload.enabled.then(|| OverloadRuntime {
                cfg: self.overload,
                admission: (0..self.pairs).map(|_| AdmissionState::new()).collect(),
                fleet_shed: false,
                last_consumed: vec![0; self.pairs],
                stuck_ticks: vec![0; self.pairs],
            }),
            trace: self.trace_events,
        };
        sim.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PredictorKind;

    fn quick(strategy: StrategyKind) -> RunMetrics {
        Experiment::builder()
            .pairs(2)
            .cores(2)
            .duration(SimDuration::from_millis(200))
            .strategy(strategy)
            .trace(WorldCupConfig::quick_test())
            .seed(7)
            .buffer_capacity(25)
            .run()
    }

    fn all_strategies() -> Vec<StrategyKind> {
        vec![
            StrategyKind::BusyWait,
            StrategyKind::Yield,
            StrategyKind::Mutex,
            StrategyKind::Sem,
            StrategyKind::Bp,
            StrategyKind::Pbp {
                period: SimDuration::from_micros(100),
            },
            StrategyKind::Spbp {
                period: SimDuration::from_micros(100),
            },
            StrategyKind::pbpl_default(),
        ]
    }

    #[test]
    fn every_strategy_conserves_items() {
        for s in all_strategies() {
            let m = quick(s.clone());
            assert!(m.items_produced > 0, "{}: no items produced", s.name());
            assert!(
                m.all_items_consumed(),
                "{}: produced {} consumed {}",
                s.name(),
                m.items_produced,
                m.items_consumed
            );
        }
    }

    #[test]
    fn determinism_same_seed_same_metrics() {
        for s in [StrategyKind::Mutex, StrategyKind::pbpl_default()] {
            let a = quick(s.clone());
            let b = quick(s);
            assert_eq!(a.items_consumed, b.items_consumed);
            assert_eq!(a.meter.wakeups_per_sec, b.meter.wakeups_per_sec);
            assert!((a.energy.energy_j - b.energy.energy_j).abs() < 1e-12);
        }
    }

    #[test]
    fn busy_wait_profile() {
        let m = quick(StrategyKind::BusyWait);
        // Usage ≈ full (2 cores × 1000 ms/s), wakeups ≈ 0.
        assert!(
            m.usage_ms_per_sec() > 1900.0,
            "usage {}",
            m.usage_ms_per_sec()
        );
        assert!(
            m.wakeups_per_sec() < 20.0,
            "wakeups {}",
            m.wakeups_per_sec()
        );
        assert_eq!(m.mean_latency(), SimDuration::ZERO);
    }

    #[test]
    fn yield_draws_less_power_than_busy_wait() {
        let bw = quick(StrategyKind::BusyWait);
        let y = quick(StrategyKind::Yield);
        assert!(
            y.extra_power_mw() < bw.extra_power_mw(),
            "yield {} vs bw {}",
            y.extra_power_mw(),
            bw.extra_power_mw()
        );
        assert!(y.wakeups_per_sec() > bw.wakeups_per_sec());
    }

    #[test]
    fn batchers_use_less_power_than_busy_wait() {
        let bw = quick(StrategyKind::BusyWait);
        for s in [
            StrategyKind::Mutex,
            StrategyKind::Bp,
            StrategyKind::pbpl_default(),
        ] {
            let m = quick(s.clone());
            assert!(
                m.extra_power_mw() < 0.5 * bw.extra_power_mw(),
                "{} {} vs BW {}",
                s.name(),
                m.extra_power_mw(),
                bw.extra_power_mw()
            );
        }
    }

    #[test]
    fn bp_wakeups_are_all_overflows() {
        let m = quick(StrategyKind::Bp);
        assert_eq!(m.scheduled_wakeups(), 0);
        assert!(m.overflow_wakeups() > 0);
        // Invocation count ≈ items / capacity.
        let expected = m.items_produced / 25;
        let got = m.overflow_wakeups();
        assert!(
            got >= expected.saturating_sub(2) && got <= expected + 2,
            "expected ≈{expected}, got {got}"
        );
    }

    #[test]
    fn pbp_has_more_overflows_than_spbp() {
        // §III-C: nanosleep jitter causes more buffer overflows.
        // Use a tighter buffer so jitter actually bites.
        let run = |s| {
            Experiment::builder()
                .pairs(2)
                .cores(2)
                .duration(SimDuration::from_millis(500))
                .strategy(s)
                .trace(WorldCupConfig::quick_test())
                .seed(11)
                .buffer_capacity(8)
                .run()
        };
        let pbp = run(StrategyKind::Pbp {
            period: SimDuration::from_micros(500),
        });
        let spbp = run(StrategyKind::Spbp {
            period: SimDuration::from_micros(500),
        });
        assert!(
            pbp.overflow_wakeups() >= spbp.overflow_wakeups(),
            "pbp {} vs spbp {}",
            pbp.overflow_wakeups(),
            spbp.overflow_wakeups()
        );
    }

    #[test]
    fn pbpl_beats_bp_on_wakeups() {
        let run = |s| {
            Experiment::builder()
                .pairs(5)
                .cores(2)
                .duration(SimDuration::from_secs(1))
                .strategy(s)
                .trace(WorldCupConfig::quick_test())
                .seed(3)
                .buffer_capacity(25)
                .run()
        };
        let bp = run(StrategyKind::Bp);
        let pbpl = run(StrategyKind::pbpl_default());
        assert!(
            pbpl.wakeups_per_sec() < bp.wakeups_per_sec(),
            "pbpl {} vs bp {}",
            pbpl.wakeups_per_sec(),
            bp.wakeups_per_sec()
        );
    }

    #[test]
    fn pbpl_latency_bounded_for_scheduled_items() {
        let cfg = PbplConfig {
            slot: SimDuration::from_millis(2),
            max_latency: SimDuration::from_millis(5),
            ..PbplConfig::default()
        };
        let m = quick(StrategyKind::Pbpl(cfg));
        // Scheduled wakeups occur at most max_latency + slot + work after
        // buffering; allow generous slack for the end-of-run flush.
        assert!(
            m.mean_latency() < SimDuration::from_millis(6),
            "mean latency {}",
            m.mean_latency()
        );
    }

    #[test]
    fn pbpl_records_scheduled_and_overflow_split() {
        let m = quick(StrategyKind::pbpl_default());
        assert!(m.scheduled_wakeups() > 0, "slot wakeups must occur");
        let total: u64 = m.pairs.iter().map(|p| p.invocations).sum();
        assert_eq!(
            total,
            m.scheduled_wakeups() + m.overflow_wakeups(),
            "every PBPL invocation is scheduled or overflow"
        );
    }

    #[test]
    fn mutex_and_sem_wake_per_burst_not_per_item() {
        let m = quick(StrategyKind::Mutex);
        let item_wakes: u64 = m.pairs.iter().map(|p| p.item_wakeups).sum();
        assert!(item_wakes > 0);
        assert!(
            (item_wakes as f64) < 0.8 * m.items_produced as f64,
            "clustered arrivals must coalesce: {} wakes for {} items",
            item_wakes,
            m.items_produced
        );
    }

    #[test]
    fn sem_cheaper_than_mutex() {
        let mutex = quick(StrategyKind::Mutex);
        let sem = quick(StrategyKind::Sem);
        assert!(sem.usage_ms_per_sec() <= mutex.usage_ms_per_sec());
        assert!(sem.extra_power_mw() <= mutex.extra_power_mw());
    }

    #[test]
    fn single_core_forces_sharing() {
        let m = Experiment::builder()
            .pairs(4)
            .cores(1)
            .duration(SimDuration::from_millis(100))
            .strategy(StrategyKind::pbpl_default())
            .trace(WorldCupConfig::quick_test())
            .seed(5)
            .run();
        assert!(m.all_items_consumed());
        assert_eq!(m.core_reports.len(), 1);
    }

    #[test]
    fn explicit_traces_respected() {
        let horizon = SimTime::from_millis(10);
        let t0 = Trace::new(vec![SimTime::from_millis(1)], horizon);
        let t1 = Trace::new(
            vec![SimTime::from_millis(2), SimTime::from_millis(3)],
            horizon,
        );
        let m = Experiment::builder()
            .pairs(2)
            .cores(1)
            .duration(SimDuration::from_millis(10))
            .strategy(StrategyKind::Mutex)
            .traces(vec![t0, t1])
            .run();
        assert_eq!(m.items_produced, 3);
        assert_eq!(m.pairs[0].items_produced, 1);
        assert_eq!(m.pairs[1].items_produced, 2);
    }

    #[test]
    fn empty_trace_runs_clean() {
        let horizon = SimTime::from_millis(10);
        let m = Experiment::builder()
            .pairs(1)
            .cores(1)
            .duration(SimDuration::from_millis(10))
            .strategy(StrategyKind::pbpl_default())
            .traces(vec![Trace::new(vec![], horizon)])
            .run();
        assert_eq!(m.items_produced, 0);
        assert!(m.all_items_consumed());
    }

    #[test]
    fn core_timelines_validate() {
        for s in all_strategies() {
            let m = quick(s.clone());
            for r in &m.core_reports {
                r.validate().unwrap_or_else(|e| panic!("{}: {e}", s.name()));
            }
        }
    }

    #[test]
    fn pbpl_elastic_capacity_varies_when_resizing() {
        // Several consumers on one core with a bursty trace: dynamic
        // sizing must move at least some capacity samples off the fixed
        // base (paper: 43 of 50 allocated on average).
        // Rate swings around B0-per-slot so both shrink (quiet troughs)
        // and grow (peaks) trigger.
        let trace = WorldCupConfig {
            mean_rate: 700.0,
            diurnal_swing: 5.0,
            diurnal_cycles: 3.0,
            ..WorldCupConfig::quick_test()
        };
        let m = Experiment::builder()
            .pairs(4)
            .cores(1)
            .duration(SimDuration::from_millis(800))
            .strategy(StrategyKind::pbpl_default())
            .trace(trace)
            .seed(9)
            .buffer_capacity(25)
            .run();
        let mean_cap = m.mean_capacity();
        assert!(mean_cap > 0.0);
        assert!(
            (mean_cap - 25.0).abs() > 0.2,
            "capacity should deviate from B0=25, got {mean_cap}"
        );
    }

    #[test]
    fn pbpl_no_resizing_keeps_base_capacity() {
        let cfg = PbplConfig {
            resizing: false,
            ..PbplConfig::default()
        };
        let m = quick(StrategyKind::Pbpl(cfg));
        assert!(
            (m.mean_capacity() - 25.0).abs() < 1e-9,
            "fixed capacity expected, got {}",
            m.mean_capacity()
        );
    }

    #[test]
    fn kalman_predictor_runs() {
        let cfg = PbplConfig {
            predictor: PredictorKind::Kalman { q: 1e6, r: 1e7 },
            ..PbplConfig::default()
        };
        let m = quick(StrategyKind::Pbpl(cfg));
        assert!(m.all_items_consumed());
    }

    /// A trace dense enough to trip the admission controller: one item
    /// every 1 µs for `ms` milliseconds, per pair — with every pair on
    /// one shared core, the drain work alone outruns the core and the
    /// service lag climbs without bound.
    fn flood_traces(pairs: usize, ms: u64) -> Vec<Trace> {
        let horizon = SimTime::from_millis(ms);
        (0..pairs)
            .map(|_| {
                let times = (0..(ms * 1_000))
                    .map(|k| SimTime::from_nanos(k * 1_000 + 1))
                    .collect();
                Trace::new(times, horizon)
            })
            .collect()
    }

    fn overload_run(strategy: StrategyKind, cfg: OverloadConfig) -> RunMetrics {
        Experiment::builder()
            .pairs(2)
            .cores(1)
            .duration(SimDuration::from_millis(50))
            .strategy(strategy)
            .traces(flood_traces(2, 50))
            .seed(11)
            .buffer_capacity(25)
            .overload(cfg)
            .run()
    }

    /// Overload knobs tight enough that a 2-pairs-on-1-core 100 k
    /// items/s flood (whose drains keep the shared core lagging behind
    /// the arrivals) trips admission within the run.
    fn tight_overload() -> OverloadConfig {
        OverloadConfig {
            deadline: SimDuration::from_micros(100),
            supervisor_period: SimDuration::from_millis(5),
            ..OverloadConfig::standard()
        }
    }

    #[test]
    fn overload_disabled_is_inert() {
        // An explicitly-disabled overload config with aggressive knobs
        // must be bit-identical to the builder default — the enabled
        // flag alone decides whether the layer exists.
        let base = quick(StrategyKind::pbpl_default());
        let disabled = Experiment::builder()
            .pairs(2)
            .cores(2)
            .duration(SimDuration::from_millis(200))
            .strategy(StrategyKind::pbpl_default())
            .trace(WorldCupConfig::quick_test())
            .seed(7)
            .buffer_capacity(25)
            .overload(OverloadConfig {
                enabled: false,
                deadline: SimDuration::from_nanos(1),
                trip_arrivals: 1,
                ..OverloadConfig::default()
            })
            .run();
        assert_eq!(
            base.energy.energy_j.to_bits(),
            disabled.energy.energy_j.to_bits()
        );
        assert_eq!(base.items_consumed, disabled.items_consumed);
        assert_eq!(base.items_shed, 0);
        assert_eq!(disabled.items_shed, 0);
        assert_eq!(base.scheduler, disabled.scheduler);
    }

    #[test]
    fn overload_sheds_and_ledger_balances() {
        for strategy in [StrategyKind::Bp, StrategyKind::pbpl_default()] {
            let m = overload_run(strategy.clone(), tight_overload());
            assert!(
                m.items_shed > 0,
                "{}: flood should shed under a 100 µs deadline",
                strategy.name()
            );
            assert!(
                m.all_items_consumed(),
                "{}: produced {} != consumed {} + shed {}",
                strategy.name(),
                m.items_produced,
                m.items_consumed,
                m.items_shed
            );
            assert_eq!(
                m.scheduler.items_shed, m.items_shed,
                "scheduler stamp must match the metric total"
            );
            assert!(m.scheduler.ledger_balanced());
            // Determinism: same seed, same shed count.
            let again = overload_run(strategy, tight_overload());
            assert_eq!(m.items_shed, again.items_shed);
        }
    }

    #[test]
    fn overload_events_pair_up_and_account_sheds() {
        use pc_trace_events::Recorder;
        let recorder = Recorder::bounded(1 << 20);
        let m = Experiment::builder()
            .pairs(2)
            .cores(1)
            .duration(SimDuration::from_millis(50))
            .strategy(StrategyKind::Bp)
            .traces(flood_traces(2, 50))
            .seed(11)
            .buffer_capacity(25)
            .overload(tight_overload())
            .record_events(recorder.handle())
            .run();
        let log = recorder.take();
        let mut entered = 0u64;
        let mut cleared = 0u64;
        let mut shed_events = 0u64;
        let mut shed_reported = 0u64;
        let mut open = std::collections::BTreeSet::new();
        for ev in &log.events {
            match ev.kind {
                TraceEvent::OverloadEntered { pair, .. } => {
                    assert!(open.insert(pair), "pair {pair} entered twice");
                    entered += 1;
                }
                TraceEvent::OverloadCleared { pair, shed } => {
                    assert!(open.remove(&pair), "pair {pair} cleared while closed");
                    cleared += 1;
                    shed_reported += shed;
                }
                TraceEvent::ItemShed { pair } => {
                    assert!(open.contains(&pair), "shed outside a window");
                    shed_events += 1;
                }
                _ => {}
            }
        }
        assert!(entered > 0, "flood should open at least one window");
        assert_eq!(entered, cleared, "every window must close by teardown");
        assert!(open.is_empty());
        assert_eq!(shed_events, m.items_shed);
        assert_eq!(
            shed_reported, m.items_shed,
            "window tallies must cover all sheds"
        );
        let window_total: u64 = m.pairs.iter().map(|p| p.overload_windows).sum();
        assert_eq!(window_total, entered);
    }

    #[test]
    fn overload_conserves_for_every_strategy() {
        for s in all_strategies() {
            let m = overload_run(s.clone(), tight_overload());
            assert!(
                m.all_items_consumed(),
                "{}: produced {} consumed {} shed {}",
                s.name(),
                m.items_produced,
                m.items_consumed,
                m.items_shed
            );
            assert!(
                m.scheduler.ledger_balanced(),
                "{}: {:?}",
                s.name(),
                m.scheduler
            );
        }
    }
}

//! Production-rate predictors (§V-C "Prediction").
//!
//! "The consumer attempts to predict the rate of items produced by the
//! producer based on the recent past. We use a moving average estimation
//! …  The reason for selecting the moving average is the simplicity of
//! its calculation, imposing very low overhead."
//!
//! [`MovingAverage`] is the paper's estimator; [`Ewma`] is the cheaper
//! fixed-memory variant; [`Kalman`] implements the paper's named future
//! work ("we are currently working on … using Kalman filter for
//! estimating producer rate with better accuracy", §VIII). All three are
//! compared by the `ablations` experiment.

use pc_sim::SimDuration;
use std::collections::VecDeque;

/// An online estimator of a producer's item rate (items/second).
pub trait RatePredictor: Send {
    /// Records that `items` arrived during the `dt` preceding this call —
    /// the paper's rⱼ = |γᵢ(τⱼ₋₁, τⱼ)| / (τⱼ − τⱼ₋₁). Zero-length
    /// intervals are ignored.
    fn observe(&mut self, items: u64, dt: SimDuration);

    /// The predicted upcoming rate r̂, items/second. Implementations
    /// return a configured prior before the first observation.
    fn rate(&self) -> f64;

    /// Clears learned state back to the prior.
    fn reset(&mut self);
}

/// Final output guard shared by every estimator: a rate must be finite
/// and non-negative. NaN/∞ — only reachable through pathological
/// accumulated state — degrade to zero, which planners already treat as
/// "no signal" (they keep their current allocation).
fn sanitize(rate: f64) -> f64 {
    if rate.is_finite() {
        rate.max(0.0)
    } else {
        0.0
    }
}

/// The paper's h-step moving average:
/// r̂ᵢ₊₁ = (Σⱼ₌ᵢ₋ₕ₊₁..ᵢ rⱼ) / h.
#[derive(Debug, Clone)]
pub struct MovingAverage {
    history: usize,
    window: VecDeque<f64>,
    sum: f64,
    prior: f64,
}

impl MovingAverage {
    /// A moving average over the last `history` observed rates, returning
    /// `prior` until the first observation.
    ///
    /// Panics if `history == 0`.
    pub fn new(history: usize, prior: f64) -> Self {
        assert!(history > 0, "moving average needs history ≥ 1");
        MovingAverage {
            history,
            window: VecDeque::with_capacity(history),
            sum: 0.0,
            prior,
        }
    }
}

impl RatePredictor for MovingAverage {
    fn observe(&mut self, items: u64, dt: SimDuration) {
        if dt.is_zero() {
            return;
        }
        let r = items as f64 / dt.as_secs_f64();
        if !r.is_finite() {
            return;
        }
        if self.window.len() == self.history {
            self.sum -= self.window.pop_front().expect("window is full");
        }
        self.window.push_back(r);
        self.sum += r;
    }

    fn rate(&self) -> f64 {
        if self.window.is_empty() {
            sanitize(self.prior)
        } else {
            sanitize(self.sum / self.window.len() as f64)
        }
    }

    fn reset(&mut self) {
        self.window.clear();
        self.sum = 0.0;
    }
}

/// Exponentially weighted moving average:
/// r̂ ← α·r + (1−α)·r̂.
#[derive(Debug, Clone)]
pub struct Ewma {
    alpha: f64,
    estimate: Option<f64>,
    prior: f64,
}

impl Ewma {
    /// EWMA with smoothing factor `alpha` in `(0, 1]`.
    pub fn new(alpha: f64, prior: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma {
            alpha,
            estimate: None,
            prior,
        }
    }
}

impl RatePredictor for Ewma {
    fn observe(&mut self, items: u64, dt: SimDuration) {
        if dt.is_zero() {
            return;
        }
        let r = items as f64 / dt.as_secs_f64();
        if !r.is_finite() {
            return;
        }
        self.estimate = Some(match self.estimate {
            None => r,
            Some(prev) => self.alpha * r + (1.0 - self.alpha) * prev,
        });
    }

    fn rate(&self) -> f64 {
        sanitize(self.estimate.unwrap_or(self.prior))
    }

    fn reset(&mut self) {
        self.estimate = None;
    }
}

/// A scalar Kalman filter over the rate (the paper's §VIII future work).
/// State: x = rate; random-walk process model with variance `q` per
/// observation; measurement noise variance `r`.
#[derive(Debug, Clone)]
pub struct Kalman {
    q: f64,
    r: f64,
    x: Option<f64>,
    p: f64,
    prior: f64,
}

impl Kalman {
    /// Kalman filter with process noise `q` and measurement noise `r`
    /// (both variances, in (items/s)²).
    pub fn new(q: f64, r: f64, prior: f64) -> Self {
        assert!(q > 0.0 && r > 0.0, "noise variances must be positive");
        Kalman {
            q,
            r,
            x: None,
            p: 1.0,
            prior,
        }
    }

    /// Current error variance estimate (diagnostics).
    pub fn variance(&self) -> f64 {
        self.p
    }
}

impl RatePredictor for Kalman {
    fn observe(&mut self, items: u64, dt: SimDuration) {
        if dt.is_zero() {
            return;
        }
        let z = items as f64 / dt.as_secs_f64();
        if !z.is_finite() {
            return;
        }
        match self.x {
            None => {
                self.x = Some(z);
                self.p = self.r;
            }
            Some(x) => {
                // Predict: random walk.
                let p = self.p + self.q;
                // Update.
                let k = p / (p + self.r);
                self.x = Some(x + k * (z - x));
                self.p = (1.0 - k) * p;
            }
        }
    }

    fn rate(&self) -> f64 {
        sanitize(self.x.unwrap_or(self.prior))
    }

    fn reset(&mut self) {
        self.x = None;
        self.p = 1.0;
    }
}

/// Holt's double-exponential smoothing: tracks level *and trend*, so a
/// steadily ramping producer (e.g. the rising edge of a flash crowd) is
/// extrapolated instead of lagged. `alpha` smooths the level, `beta` the
/// trend.
#[derive(Debug, Clone)]
pub struct Holt {
    alpha: f64,
    beta: f64,
    level: Option<f64>,
    trend: f64,
    prior: f64,
}

impl Holt {
    /// Holt smoothing with level factor `alpha` and trend factor `beta`,
    /// both in `(0, 1]`.
    pub fn new(alpha: f64, beta: f64, prior: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        assert!(beta > 0.0 && beta <= 1.0, "beta must be in (0, 1]");
        Holt {
            alpha,
            beta,
            level: None,
            trend: 0.0,
            prior,
        }
    }
}

impl RatePredictor for Holt {
    fn observe(&mut self, items: u64, dt: SimDuration) {
        if dt.is_zero() {
            return;
        }
        let z = items as f64 / dt.as_secs_f64();
        if !z.is_finite() {
            return;
        }
        match self.level {
            None => {
                self.level = Some(z);
                self.trend = 0.0;
            }
            Some(prev_level) => {
                let level = self.alpha * z + (1.0 - self.alpha) * (prev_level + self.trend);
                self.trend = self.beta * (level - prev_level) + (1.0 - self.beta) * self.trend;
                self.level = Some(level);
            }
        }
    }

    fn rate(&self) -> f64 {
        match self.level {
            // One-step-ahead forecast: level + trend.
            Some(level) => sanitize(level + self.trend),
            None => sanitize(self.prior),
        }
    }

    fn reset(&mut self) {
        self.level = None;
        self.trend = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn feed(p: &mut dyn RatePredictor, rates: &[f64]) {
        for &r in rates {
            // 10ms windows: items = r * 0.01.
            p.observe((r * 0.01).round() as u64, ms(10));
        }
    }

    #[test]
    fn moving_average_matches_paper_formula() {
        let mut ma = MovingAverage::new(3, 0.0);
        feed(&mut ma, &[1000.0, 2000.0, 3000.0, 4000.0]);
        // Last 3: (2000+3000+4000)/3.
        assert!((ma.rate() - 3000.0).abs() < 1.0, "rate {}", ma.rate());
    }

    #[test]
    fn moving_average_partial_window() {
        let mut ma = MovingAverage::new(5, 0.0);
        feed(&mut ma, &[1000.0, 3000.0]);
        assert!((ma.rate() - 2000.0).abs() < 1.0);
    }

    #[test]
    fn prior_used_before_observations() {
        let ma = MovingAverage::new(3, 1234.0);
        assert_eq!(ma.rate(), 1234.0);
        let ew = Ewma::new(0.5, 777.0);
        assert_eq!(ew.rate(), 777.0);
        let k = Kalman::new(1.0, 1.0, 42.0);
        assert_eq!(k.rate(), 42.0);
    }

    #[test]
    fn zero_dt_ignored() {
        let mut ma = MovingAverage::new(2, 500.0);
        ma.observe(100, SimDuration::ZERO);
        assert_eq!(ma.rate(), 500.0);
    }

    #[test]
    fn ewma_approaches_constant_signal() {
        let mut ew = Ewma::new(0.3, 0.0);
        feed(&mut ew, &[5000.0; 50]);
        assert!((ew.rate() - 5000.0).abs() < 10.0);
    }

    #[test]
    fn ewma_weights_recent_higher() {
        let mut ew = Ewma::new(0.5, 0.0);
        feed(&mut ew, &[1000.0, 1000.0, 9000.0]);
        assert!(ew.rate() > 4000.0, "rate {}", ew.rate());
    }

    #[test]
    fn kalman_converges_and_smooths() {
        let mut k = Kalman::new(100.0, 500_000.0, 0.0);
        feed(&mut k, &[3000.0; 100]);
        assert!((k.rate() - 3000.0).abs() < 50.0, "rate {}", k.rate());
        // A single outlier moves the estimate only mildly.
        let before = k.rate();
        feed(&mut k, &[30_000.0]);
        let jump = k.rate() - before;
        assert!(jump > 0.0 && jump < 0.5 * 27_000.0, "jump {jump}");
    }

    #[test]
    fn kalman_variance_shrinks_with_data() {
        let mut k = Kalman::new(1.0, 1000.0, 0.0);
        feed(&mut k, &[2000.0]);
        let p0 = k.variance();
        feed(&mut k, &[2000.0; 20]);
        assert!(k.variance() < p0);
    }

    #[test]
    fn tracking_a_rate_step() {
        // All three must eventually track a step change; the moving
        // average lags by design.
        let mut ma = MovingAverage::new(4, 0.0);
        let mut ew = Ewma::new(0.4, 0.0);
        let mut ka = Kalman::new(50_000.0, 100_000.0, 0.0);
        for p in [&mut ma as &mut dyn RatePredictor, &mut ew, &mut ka] {
            feed(p, &[1000.0; 10]);
            feed(p, &[8000.0; 10]);
            assert!(p.rate() > 6000.0, "predictor failed to track step");
        }
    }

    #[test]
    fn holt_extrapolates_a_ramp() {
        // Rate climbing 500/s per observation: Holt should forecast
        // ABOVE the last observation, while the moving average lags
        // below it.
        let ramp: Vec<f64> = (1..=20).map(|k| 500.0 * k as f64).collect();
        let mut holt = Holt::new(0.5, 0.3, 0.0);
        let mut ma = MovingAverage::new(8, 0.0);
        feed(&mut holt, &ramp);
        feed(&mut ma, &ramp);
        let last = *ramp.last().unwrap();
        assert!(holt.rate() > last, "holt {} vs last {last}", holt.rate());
        assert!(ma.rate() < last, "ma {} vs last {last}", ma.rate());
    }

    #[test]
    fn holt_settles_on_constant_signal() {
        let mut holt = Holt::new(0.4, 0.2, 0.0);
        feed(&mut holt, &[3000.0; 60]);
        assert!((holt.rate() - 3000.0).abs() < 30.0, "rate {}", holt.rate());
    }

    #[test]
    fn holt_never_negative_on_downward_ramp() {
        let down: Vec<f64> = (0..20)
            .map(|k| (2000.0 - 150.0 * k as f64).max(0.0))
            .collect();
        let mut holt = Holt::new(0.6, 0.4, 0.0);
        feed(&mut holt, &down);
        assert!(holt.rate() >= 0.0);
    }

    #[test]
    fn reset_restores_prior() {
        let mut ma = MovingAverage::new(3, 111.0);
        feed(&mut ma, &[9000.0; 5]);
        ma.reset();
        assert_eq!(ma.rate(), 111.0);
        let mut k = Kalman::new(1.0, 1.0, 9.0);
        feed(&mut k, &[5000.0; 5]);
        k.reset();
        assert_eq!(k.rate(), 9.0);
    }

    #[test]
    fn rates_never_negative() {
        let mut ew = Ewma::new(1.0, -5.0);
        assert_eq!(ew.rate(), 0.0, "negative prior clamps");
        ew.observe(0, ms(10));
        assert_eq!(ew.rate(), 0.0);
    }

    #[test]
    fn all_zero_window_yields_finite_zero_rate() {
        // A stalled producer reports zero items every interval; every
        // estimator must settle on a finite, non-negative (zero) rate
        // instead of propagating NaN/∞ into slot selection.
        let mut preds: Vec<Box<dyn RatePredictor>> = vec![
            Box::new(MovingAverage::new(8, 500.0)),
            Box::new(Ewma::new(0.4, 500.0)),
            Box::new(Kalman::new(100.0, 1000.0, 500.0)),
            Box::new(Holt::new(0.5, 0.3, 500.0)),
        ];
        for p in preds.iter_mut() {
            for _ in 0..32 {
                p.observe(0, ms(10));
            }
            let r = p.rate();
            assert!(r.is_finite(), "rate must stay finite, got {r}");
            assert!(r >= 0.0, "rate must stay non-negative, got {r}");
            assert!(
                r < 1.0,
                "all-zero window must drive the rate to ~0, got {r}"
            );
        }
    }

    #[test]
    fn stall_then_resume_recovers() {
        let mut ew = Ewma::new(0.5, 0.0);
        feed(&mut ew, &[4000.0; 10]);
        for _ in 0..20 {
            ew.observe(0, ms(10));
        }
        assert!(ew.rate() < 10.0, "stall drives rate down: {}", ew.rate());
        feed(&mut ew, &[4000.0; 10]);
        assert!(ew.rate() > 3000.0, "resume recovers: {}", ew.rate());
    }

    #[test]
    fn non_finite_priors_sanitized() {
        let ma = MovingAverage::new(3, f64::NAN);
        assert_eq!(ma.rate(), 0.0);
        let ew = Ewma::new(0.5, f64::INFINITY);
        assert_eq!(ew.rate(), 0.0);
        let k = Kalman::new(1.0, 1.0, f64::NEG_INFINITY);
        assert_eq!(k.rate(), 0.0);
        let h = Holt::new(0.5, 0.5, f64::NAN);
        assert_eq!(h.rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "history")]
    fn zero_history_panics() {
        MovingAverage::new(0, 0.0);
    }
}

//! Strategy-specific constants and work models for the eight consumer
//! implementations (§III-A + §V), shared by the simulator in
//! [`crate::system`].
//!
//! How each §III implementation maps onto simulation behaviour:
//!
//! * **BW** — the consumer spins; its core never idles. Modelled as one
//!   active span covering the whole run (wakeups ≈ 0, usage ≈ 1000 ms/s,
//!   power = full active power). Items are consumed the instant they are
//!   produced.
//! * **Yield** — like BW but `sched_yield()` cedes the CPU briefly every
//!   scheduler round, and the paper observed DVFS dropping the frequency
//!   under yielding ("slightly less power … attributed to DVFS setting
//!   the CPU frequency to a smaller value"). Modelled as a high-duty
//!   tick pattern plus [`YIELD_DVFS_FACTOR`] on active power.
//! * **Mutex** — item-at-a-time consumption guarded by a mutex and
//!   condvars. The consumer sleeps when the backlog is empty; the first
//!   item of a burst wakes it and it drains until empty, paying
//!   lock+signal overhead per item ([`MUTEX_SYNC_FACTOR`]).
//! * **Sem** — identical structure over a circular buffer with two
//!   semaphores; sem post/wait is cheaper than mutex+condvar round trips
//!   ([`SEM_SYNC_FACTOR`] < 1).
//! * **BP** — the consumer wakes only when the producer fills the buffer
//!   (every wakeup is, in the paper's terms, a buffer overflow), then
//!   drains the whole batch at batch cost.
//! * **PBP** — fixed-period batching on `nanosleep`, whose jitter causes
//!   extra overflows (§III-C); scheduled fires drift by the sleep model.
//! * **SPBP** — fixed-period batching on `SIGALRM`: an absolute-time
//!   schedule with microsecond-class jitter.
//! * **PBPL** — §V: slot track, per-core manager, rate prediction,
//!   latching and elastic buffers.

use pc_power::PowerModel;
use pc_sim::SimDuration;

/// Per-item synchronisation overhead multiplier for the Mutex strategy
/// (baseline: `PowerModel::sync_op_cpu` is calibrated as one mutex
/// lock/unlock + condvar signal round trip).
pub const MUTEX_SYNC_FACTOR: f64 = 1.0;

/// Per-item synchronisation overhead multiplier for the Sem strategy:
/// a futex-backed sem_post/sem_wait pair is measurably cheaper than a
/// mutex+condvar round trip.
pub const SEM_SYNC_FACTOR: f64 = 0.625;

/// Active-power multiplier for the Yield strategy: the paper attributes
/// Yield's slightly lower draw to DVFS stepping the clock down under
/// constant yielding.
pub const YIELD_DVFS_FACTOR: f64 = 0.88;

/// Period of the Yield strategy's occasional genuine idles. A yielding
/// thread on an otherwise-idle core mostly reacquires the CPU instantly;
/// only the odd scheduler round parks it briefly, so its wakeup count is
/// far below the item-driven implementations (the paper's Fig. 3 places
/// BW and Yield at the low-wakeup, high-power corner).
pub const YIELD_TICK: SimDuration = SimDuration::from_millis(25);

/// Idle share of each Yield tick (the voluntary yield window).
pub const YIELD_IDLE_PER_TICK: SimDuration = SimDuration::from_micros(100);

/// CPU time for an item-at-a-time drain of `n` items with the given
/// synchronisation factor (Mutex/Sem).
pub fn item_driven_work(model: &PowerModel, n: u64, sync_factor: f64) -> SimDuration {
    let per_item = model
        .item_cpu
        .saturating_add(model.sync_op_cpu.mul_f64(sync_factor));
    model.dispatch_cpu.saturating_add(per_item * n)
}

/// CPU time for a batched drain of `n` items (BP/PBP/SPBP/PBPL): one
/// dispatch, no per-item synchronisation.
pub fn batch_work(model: &PowerModel, n: u64) -> SimDuration {
    model.batch_cpu(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sem_cheaper_than_mutex() {
        let m = PowerModel::exynos_like();
        let mutex = item_driven_work(&m, 100, MUTEX_SYNC_FACTOR);
        let sem = item_driven_work(&m, 100, SEM_SYNC_FACTOR);
        assert!(sem < mutex);
    }

    #[test]
    fn batching_cheaper_than_item_driven() {
        let m = PowerModel::exynos_like();
        assert!(batch_work(&m, 100) < item_driven_work(&m, 100, SEM_SYNC_FACTOR));
    }

    #[test]
    fn empty_drain_costs_dispatch_only() {
        let m = PowerModel::exynos_like();
        assert_eq!(batch_work(&m, 0), m.dispatch_cpu);
        assert_eq!(item_driven_work(&m, 0, 1.0), m.dispatch_cpu);
    }

    #[test]
    fn yield_duty_cycle_mostly_busy() {
        let busy = YIELD_TICK.saturating_sub(YIELD_IDLE_PER_TICK);
        assert!(busy.as_secs_f64() / YIELD_TICK.as_secs_f64() > 0.95);
    }
}

//! Property tests on the ρ cost function and slot selection (§V-C):
//! invariants that must hold for arbitrary rates, capacities, latency
//! bounds and reservation books.

use pc_core::{select_slot, CoreManager, CostModel, PairId, SlotTrack};
use pc_sim::{SimDuration, SimTime};
use proptest::prelude::*;

fn cost() -> CostModel {
    CostModel {
        wakeup_energy_j: 120e-6,
        item_energy_j: 3.2e-6,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn chosen_slot_is_strictly_future_and_within_deadline(
        delta_us in 100u64..100_000,
        now_us in 0u64..1_000_000,
        rate in 0.0f64..1e6,
        capacity in 1usize..500,
        latency_us in 100u64..1_000_000,
        reservations in prop::collection::vec((1u64..200, 0usize..8), 0..10),
    ) {
        let track = SlotTrack::new(SimDuration::from_micros(delta_us));
        let mut manager = CoreManager::new(track);
        for (slot, consumer) in reservations {
            manager.reserve(slot, PairId(consumer));
        }
        let now = SimTime::from_micros(now_us);
        let max_latency = SimDuration::from_micros(latency_us.max(delta_us));
        let choice = select_slot(
            &track, &manager, &cost(), now, rate, capacity, max_latency, true, Some(PairId(99)),
        );
        // Strictly in the future.
        prop_assert!(track.slot_start(choice.slot) > now, "slot {} not after {now}", choice.slot);
        // Never beyond one slot past the latency deadline (slot
        // quantisation can round the deadline up by at most Δ).
        let bound = now.saturating_add(max_latency).saturating_add(SimDuration::from_micros(delta_us));
        prop_assert!(
            track.slot_start(choice.slot) <= bound,
            "slot {} start {} beyond deadline bound {bound}",
            choice.slot,
            track.slot_start(choice.slot)
        );
        // Predicted items consistent with rate × horizon.
        let horizon = track.slot_start(choice.slot).saturating_since(now).as_secs_f64();
        prop_assert!((choice.predicted_items - rate * horizon).abs() < 1e-6 * (1.0 + rate));
    }

    #[test]
    fn latched_choice_never_costs_more_per_item_than_the_candidate(
        delta_us in 500u64..50_000,
        rate in 1.0f64..1e5,
        capacity in 1usize..200,
        reserved_slot in 1u64..40,
    ) {
        let track = SlotTrack::new(SimDuration::from_micros(delta_us));
        let mut with_res = CoreManager::new(track);
        with_res.reserve(reserved_slot, PairId(7));
        let empty = CoreManager::new(track);
        let now = SimTime::ZERO;
        let max_latency = SimDuration::from_micros(delta_us * 50);
        let c = cost();
        let latched = select_slot(&track, &with_res, &c, now, rate, capacity, max_latency, true, Some(PairId(0)));
        let lone = select_slot(&track, &empty, &c, now, rate, capacity, max_latency, true, Some(PairId(0)));
        let rho_of = |choice: &pc_core::SlotChoice| c.rho(!choice.latched, choice.predicted_items);
        // Adding a latch opportunity can only improve (or not affect) the
        // per-item cost of the selection.
        prop_assert!(
            rho_of(&latched) <= rho_of(&lone) + 1e-18,
            "latched rho {} vs lone rho {}",
            rho_of(&latched),
            rho_of(&lone)
        );
    }

    #[test]
    fn latching_flag_off_ignores_books(
        delta_us in 500u64..50_000,
        rate in 1.0f64..1e5,
        capacity in 1usize..200,
        reservations in prop::collection::vec((1u64..50, 0usize..8), 0..10),
    ) {
        let track = SlotTrack::new(SimDuration::from_micros(delta_us));
        let mut manager = CoreManager::new(track);
        for (slot, consumer) in reservations {
            manager.reserve(slot, PairId(consumer));
        }
        let empty = CoreManager::new(track);
        let now = SimTime::ZERO;
        let max_latency = SimDuration::from_micros(delta_us * 20);
        let c = cost();
        let a = select_slot(&track, &manager, &c, now, rate, capacity, max_latency, false, Some(PairId(99)));
        let b = select_slot(&track, &empty, &c, now, rate, capacity, max_latency, false, Some(PairId(99)));
        prop_assert_eq!(a.slot, b.slot, "without latching the book must not matter");
        prop_assert!(!a.latched);
    }

    #[test]
    fn rho_monotonicity(items_a in 0.1f64..1e6, factor in 1.01f64..100.0) {
        // With a wakeup, more items always means lower (or equal) cost
        // per item; latched cost is item-count independent (linear e).
        let c = cost();
        let items_b = items_a * factor;
        prop_assert!(c.rho(true, items_b) < c.rho(true, items_a));
        prop_assert!((c.rho(false, items_a) - c.rho(false, items_b)).abs() < 1e-18);
    }
}

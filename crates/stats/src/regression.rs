//! Ordinary least squares on one predictor.
//!
//! Used by the evaluation to fit wakeups→power trend lines (the paper's
//! claim is that wakeups/s is "the stronger deciding factor affecting
//! power" among the idle-based implementations).

use serde::{Deserialize, Serialize};

/// Result of a simple linear regression `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination (fraction of variance explained).
    pub r_squared: f64,
    /// Number of points fitted.
    pub n: usize,
}

impl LinearFit {
    /// Predicted `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Fits `y = slope·x + intercept` by least squares.
///
/// Returns `None` for fewer than two points or a constant predictor.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r_squared = if syy == 0.0 {
        1.0 // constant y is fitted exactly by slope 0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Some(LinearFit {
        slope,
        intercept,
        r_squared,
        n: xs.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys: Vec<f64> = xs.iter().map(|x| 2.5 * x - 1.0).collect();
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!((fit.slope - 2.5).abs() < 1e-12);
        assert!((fit.intercept + 1.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_r2_below_one() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ys = [0.1, 0.9, 2.2, 2.8, 4.1];
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!(fit.r_squared > 0.98 && fit.r_squared < 1.0);
        assert!((fit.slope - 1.0).abs() < 0.1);
    }

    #[test]
    fn predict_interpolates() {
        let fit = LinearFit {
            slope: 2.0,
            intercept: 1.0,
            r_squared: 1.0,
            n: 2,
        };
        assert_eq!(fit.predict(3.0), 7.0);
    }

    #[test]
    fn constant_x_rejected() {
        assert!(linear_fit(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn constant_y_fits_flat_line() {
        let fit = linear_fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 5.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn mismatched_lengths_rejected() {
        assert!(linear_fit(&[1.0, 2.0], &[1.0]).is_none());
        assert!(linear_fit(&[1.0], &[1.0]).is_none());
    }
}

//! Descriptive statistics over `f64` samples.
//!
//! Empty inputs return `NaN` rather than panicking so callers can surface
//! "no data" uniformly; single-sample variance is likewise `NaN` (it is
//! undefined with Bessel's correction).

/// Arithmetic mean. `NaN` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased (Bessel-corrected) sample variance. `NaN` for fewer than two
/// samples.
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation. `NaN` for fewer than two samples.
pub fn sample_std_dev(xs: &[f64]) -> f64 {
    sample_variance(xs).sqrt()
}

/// Standard error of the mean. `NaN` for fewer than two samples.
pub fn std_error(xs: &[f64]) -> f64 {
    sample_std_dev(xs) / (xs.len() as f64).sqrt()
}

/// Minimum of the samples. `NaN` for an empty slice.
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NAN, f64::min)
}

/// Maximum of the samples. `NaN` for an empty slice.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NAN, f64::max)
}

/// Percentile via linear interpolation between order statistics
/// (the common "type 7" definition). `p` in `[0, 100]`. `NaN` for an
/// empty slice.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample in percentile"));
    let p = p.clamp(0.0, 100.0) / 100.0;
    let rank = p * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Coefficient of variation (`std_dev / mean`). A unitless burstiness
/// measure used when characterising traces. `NaN` when undefined.
pub fn coefficient_of_variation(xs: &[f64]) -> f64 {
    let m = mean(xs);
    if m == 0.0 {
        return f64::NAN;
    }
    sample_std_dev(xs) / m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!(mean(&[]).is_nan());
    }

    #[test]
    fn variance_known_values() {
        // Var of {2,4,4,4,5,5,7,9} (population 4.0) sample = 32/7.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((sample_variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn variance_needs_two_samples() {
        assert!(sample_variance(&[5.0]).is_nan());
        assert!(sample_std_dev(&[]).is_nan());
    }

    #[test]
    fn std_error_scales_with_n() {
        let xs4 = [1.0, 2.0, 3.0, 4.0];
        let se = std_error(&xs4);
        assert!((se - sample_std_dev(&xs4) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn constant_data_zero_spread() {
        let xs = [3.0; 10];
        assert_eq!(sample_variance(&xs), 0.0);
        assert_eq!(std_error(&xs), 0.0);
    }

    #[test]
    fn min_max() {
        let xs = [3.0, -1.0, 7.5, 0.0];
        assert_eq!(min(&xs), -1.0);
        assert_eq!(max(&xs), 7.5);
        assert!(min(&[]).is_nan());
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(percentile(&xs, 50.0), 2.5);
        assert!((percentile(&xs, 25.0) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[9.0], 50.0), 9.0);
    }

    #[test]
    fn cv_unitless() {
        let xs = [10.0, 20.0, 30.0];
        let expected = sample_std_dev(&xs) / 20.0;
        assert!((coefficient_of_variation(&xs) - expected).abs() < 1e-12);
    }
}

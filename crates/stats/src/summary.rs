//! Replicate summaries: the `mean ± CI` presentation every experiment
//! runner prints, mirroring how the paper tabulates its three-replicate
//! measurements.

use crate::ci::{confidence_interval, ConfidenceInterval, ConfidenceLevel};
use crate::descriptive::{max, mean, min, sample_std_dev};
use serde::{Deserialize, Serialize};

/// Summary of one metric across experiment replicates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Summary {
    /// Metric name, e.g. `"power_mw"`.
    pub name: String,
    /// Raw replicate values.
    pub samples: Vec<f64>,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (`NaN` for a single replicate).
    pub std_dev: f64,
    /// Minimum replicate.
    pub min: f64,
    /// Maximum replicate.
    pub max: f64,
    /// 95% Student-t confidence interval.
    pub ci95: ConfidenceInterval,
}

impl Summary {
    /// Summarises a set of replicate measurements.
    pub fn of(name: impl Into<String>, samples: &[f64]) -> Self {
        Summary {
            name: name.into(),
            samples: samples.to_vec(),
            mean: mean(samples),
            std_dev: sample_std_dev(samples),
            min: min(samples),
            max: max(samples),
            ci95: confidence_interval(samples, ConfidenceLevel::P95),
        }
    }

    /// Relative change of this summary's mean versus a baseline mean,
    /// as a signed fraction (−0.20 = 20% lower). `NaN` if the baseline
    /// mean is zero.
    pub fn relative_to(&self, baseline: &Summary) -> f64 {
        if baseline.mean == 0.0 {
            f64::NAN
        } else {
            (self.mean - baseline.mean) / baseline.mean
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {:.3} ± {:.3} (n={}, min {:.3}, max {:.3})",
            self.name,
            self.mean,
            self.ci95.half_width,
            self.samples.len(),
            self.min,
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_fields() {
        let s = Summary::of("power", &[10.0, 12.0, 11.0]);
        assert_eq!(s.mean, 11.0);
        assert_eq!(s.min, 10.0);
        assert_eq!(s.max, 12.0);
        assert_eq!(s.samples.len(), 3);
        assert!(s.ci95.half_width > 0.0);
    }

    #[test]
    fn relative_change() {
        let base = Summary::of("w", &[100.0, 100.0]);
        let lower = Summary::of("w", &[80.0, 80.0]);
        assert!((lower.relative_to(&base) + 0.2).abs() < 1e-12);
    }

    #[test]
    fn relative_to_zero_baseline_is_nan() {
        let base = Summary::of("w", &[0.0, 0.0]);
        let other = Summary::of("w", &[1.0]);
        assert!(other.relative_to(&base).is_nan());
    }

    #[test]
    fn display_contains_name_and_n() {
        let s = Summary::of("wakeups", &[5.0, 7.0]);
        let text = s.to_string();
        assert!(text.contains("wakeups"));
        assert!(text.contains("n=2"));
    }
}

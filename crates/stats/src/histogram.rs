//! Fixed-width histograms.
//!
//! Used for item-latency distributions: batching trades latency for power
//! (§III-C "Batch processing has its drawbacks, mainly of which is the
//! latency in responding to items"), so the experiment runners report
//! latency histograms alongside power figures.

use serde::{Deserialize, Serialize};

/// A histogram with uniform bin width over `[lo, hi)` plus overflow and
/// underflow counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` uniform bins.
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0.0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            let idx = ((frac * self.bins.len() as f64) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total observations, including under/overflow.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all observations (including out-of-range ones). `NaN` when
    /// empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Raw per-bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The inclusive-lower bound of bin `i`.
    pub fn bin_lo(&self, i: usize) -> f64 {
        self.lo + (self.hi - self.lo) * i as f64 / self.bins.len() as f64
    }

    /// Approximate quantile from the binned data (`q` in `[0,1]`), using
    /// the lower edge of the bin containing the quantile. Out-of-range
    /// mass is attributed to the extremes. `NaN` when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = self.underflow;
        if cum >= target && target > 0 {
            return self.lo;
        }
        for (i, &c) in self.bins.iter().enumerate() {
            cum += c;
            if cum >= target {
                return self.bin_lo(i);
            }
        }
        self.hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.5);
        h.record(5.5);
        h.record(9.99);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[5], 1);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn out_of_range_tracked() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-0.1);
        h.record(1.0); // hi is exclusive
        h.record(2.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bins().iter().sum::<u64>(), 0);
    }

    #[test]
    fn mean_includes_all() {
        let mut h = Histogram::new(0.0, 10.0, 2);
        h.record(1.0);
        h.record(3.0);
        h.record(20.0); // overflow still counted in mean
        assert!((h.mean() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new(0.0, 1.0, 3);
        assert_eq!(h.count(), 0);
        assert!(h.mean().is_nan());
        assert!(h.quantile(0.5).is_nan());
    }

    #[test]
    fn quantile_monotone() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64);
        }
        let q50 = h.quantile(0.5);
        let q90 = h.quantile(0.9);
        let q99 = h.quantile(0.99);
        assert!(q50 <= q90 && q90 <= q99);
        assert!((q50 - 49.0).abs() <= 1.0, "q50 = {q50}");
        assert!((q90 - 89.0).abs() <= 1.0, "q90 = {q90}");
    }

    #[test]
    fn quantile_zero_is_minimum_bin() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(7.3);
        h.record(8.1);
        // q=0 must land on the lowest populated bin, not bin 0.
        assert_eq!(h.quantile(0.0), 7.0);
    }

    #[test]
    fn bin_lo_edges() {
        let h = Histogram::new(10.0, 20.0, 5);
        assert_eq!(h.bin_lo(0), 10.0);
        assert_eq!(h.bin_lo(1), 12.0);
        assert_eq!(h.bin_lo(4), 18.0);
    }

    #[test]
    #[should_panic(expected = "bin")]
    fn zero_bins_panics() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "range")]
    fn empty_range_panics() {
        Histogram::new(1.0, 1.0, 4);
    }
}

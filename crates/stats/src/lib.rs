//! # pc-stats — statistics for the experimental evaluation
//!
//! The paper's protocol (§III-B): 3 replicates per experiment, 95%
//! confidence intervals on all measurements, Pearson correlations between
//! wakeups/usage and power, and a hypothesis test ("wakeups have a
//! significant effect on power", accepted at 99% confidence). This crate
//! implements exactly those tools:
//!
//! * [`descriptive`] — mean, variance, standard deviation, standard error.
//! * [`ci`] — Student-t confidence intervals (the correct small-sample
//!   interval for 3 replicates).
//! * [`corr`] — Pearson correlation plus the t-test for its significance.
//! * [`regression`] — ordinary least squares for trend lines.
//! * [`histogram`] — fixed-width histograms for latency distributions.
//! * [`summary`] — a `mean ± half-width` presentation type used by every
//!   experiment runner.
//! * [`ttest`] — the paired t-test for same-seed strategy comparisons.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ci;
pub mod corr;
pub mod descriptive;
pub mod histogram;
pub mod regression;
pub mod summary;
pub mod ttest;

pub use ci::{confidence_interval, t_critical, ConfidenceInterval, ConfidenceLevel};
pub use corr::{correlation_significance, pearson, CorrelationTest};
pub use descriptive::{mean, sample_std_dev, sample_variance, std_error};
pub use histogram::Histogram;
pub use regression::{linear_fit, LinearFit};
pub use summary::Summary;
pub use ttest::{paired_t_test, PairedTTest};

//! Paired-sample t-test.
//!
//! The evaluation compares strategies on *the same seeds* (replicate k of
//! Mutex and replicate k of PBPL see the same trace), so the right
//! significance test for "PBPL uses less power than BP" is the paired
//! t-test on the per-seed differences — far more powerful at n = 3 than
//! comparing the two independent confidence intervals.

use crate::ci::{t_critical, ConfidenceLevel};
use crate::descriptive::{mean, sample_std_dev};
use serde::{Deserialize, Serialize};

/// Result of a paired t-test on H₀: mean difference = 0.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PairedTTest {
    /// Mean of the per-pair differences (`a[i] − b[i]`).
    pub mean_difference: f64,
    /// Test statistic `t = d̄ / (s_d / √n)`.
    pub t_statistic: f64,
    /// Degrees of freedom (`n − 1`).
    pub df: u32,
    /// Whether |t| exceeds the two-sided critical value.
    pub significant: bool,
    /// The level tested at.
    pub level: ConfidenceLevel,
}

/// Runs a paired t-test over equal-length samples measured under the same
/// conditions (same seed, different treatment).
///
/// Returns `None` for fewer than two pairs, mismatched lengths, or zero
/// variance with zero mean difference (no information). A zero-variance
/// nonzero difference is reported as trivially significant.
pub fn paired_t_test(a: &[f64], b: &[f64], level: ConfidenceLevel) -> Option<PairedTTest> {
    if a.len() != b.len() || a.len() < 2 {
        return None;
    }
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let d_mean = mean(&diffs);
    let d_sd = sample_std_dev(&diffs);
    let df = (diffs.len() - 1) as u32;
    if d_sd == 0.0 {
        if d_mean == 0.0 {
            return None;
        }
        return Some(PairedTTest {
            mean_difference: d_mean,
            t_statistic: f64::INFINITY * d_mean.signum(),
            df,
            significant: true,
            level,
        });
    }
    let t = d_mean / (d_sd / (diffs.len() as f64).sqrt());
    Some(PairedTTest {
        mean_difference: d_mean,
        t_statistic: t,
        df,
        significant: t.abs() > t_critical(df, level),
        level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistent_difference_is_significant() {
        // b is always ~10 below a, tiny noise: paired test must detect it
        // even though the groups overlap heavily.
        let a = [100.0, 200.0, 300.0, 400.0];
        let b = [90.5, 189.8, 290.2, 389.9];
        let t = paired_t_test(&a, &b, ConfidenceLevel::P95).unwrap();
        assert!(t.significant, "t = {}", t.t_statistic);
        assert!((t.mean_difference - 9.9).abs() < 0.5);
    }

    #[test]
    fn unpaired_noise_is_not_significant() {
        let a = [100.0, 210.0, 290.0];
        let b = [105.0, 195.0, 300.0];
        let t = paired_t_test(&a, &b, ConfidenceLevel::P95).unwrap();
        assert!(!t.significant, "t = {}", t.t_statistic);
    }

    #[test]
    fn identical_samples_are_none() {
        let a = [1.0, 2.0, 3.0];
        assert!(paired_t_test(&a, &a, ConfidenceLevel::P95).is_none());
    }

    #[test]
    fn constant_offset_trivially_significant() {
        let a = [5.0, 6.0, 7.0];
        let b = [4.0, 5.0, 6.0];
        let t = paired_t_test(&a, &b, ConfidenceLevel::P99).unwrap();
        assert!(t.significant);
        assert!(t.t_statistic.is_infinite() && t.t_statistic > 0.0);
    }

    #[test]
    fn sign_of_difference_preserved() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 11.5, 12.8];
        let t = paired_t_test(&a, &b, ConfidenceLevel::P95).unwrap();
        assert!(t.mean_difference < 0.0);
        assert!(t.t_statistic < 0.0);
    }

    #[test]
    fn too_few_or_mismatched_is_none() {
        assert!(paired_t_test(&[1.0], &[2.0], ConfidenceLevel::P95).is_none());
        assert!(paired_t_test(&[1.0, 2.0], &[2.0], ConfidenceLevel::P95).is_none());
    }
}

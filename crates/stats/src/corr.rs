//! Pearson correlation and its significance test.
//!
//! §III-C of the paper reports: a weak +12% correlation between CPU usage
//! and power once BW/Yield are excluded, a strong +74% correlation between
//! wakeups/s and power among the five idle-based implementations, −79.6%
//! across all seven, and a hypothesis test — *"wakeups have a significant
//! effect on power"* — accepted at 99% confidence. The `correlations`
//! experiment runner regenerates those numbers with these functions.

use crate::ci::{t_critical, ConfidenceLevel};
use serde::{Deserialize, Serialize};

/// Pearson product-moment correlation of two equal-length samples.
///
/// Returns `NaN` when fewer than two points are given, when lengths
/// differ, or when either variable is constant (undefined correlation).
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    if xs.len() != ys.len() || xs.len() < 2 {
        return f64::NAN;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return f64::NAN;
    }
    sxy / (sxx * syy).sqrt()
}

/// Outcome of testing H₀: ρ = 0 against H₁: ρ ≠ 0.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CorrelationTest {
    /// Sample correlation.
    pub r: f64,
    /// Test statistic `t = r·sqrt((n−2)/(1−r²))`.
    pub t_statistic: f64,
    /// Degrees of freedom (`n − 2`).
    pub df: u32,
    /// Whether |t| exceeds the two-sided critical value at the level.
    pub significant: bool,
    /// Level the test was run at.
    pub level: ConfidenceLevel,
}

/// Tests whether a sample correlation is significantly different from
/// zero, using the exact t-test for Pearson's r.
///
/// Returns `None` when the test is undefined (fewer than 3 points,
/// constant input, or |r| = 1 exactly — in the last case significance is
/// trivially reported instead).
pub fn correlation_significance(
    xs: &[f64],
    ys: &[f64],
    level: ConfidenceLevel,
) -> Option<CorrelationTest> {
    if xs.len() != ys.len() || xs.len() < 3 {
        return None;
    }
    let r = pearson(xs, ys);
    if r.is_nan() {
        return None;
    }
    let df = (xs.len() - 2) as u32;
    if (1.0 - r * r) <= f64::EPSILON {
        // Perfect correlation: infinitely significant.
        return Some(CorrelationTest {
            r,
            t_statistic: f64::INFINITY,
            df,
            significant: true,
            level,
        });
    }
    let t = r * ((df as f64) / (1.0 - r * r)).sqrt();
    let crit = t_critical(df, level);
    Some(CorrelationTest {
        r,
        t_statistic: t,
        df,
        significant: t.abs() > crit,
        level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_negative() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [9.0, 6.0, 3.0];
        assert!((pearson(&xs, &ys) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_is_near_zero() {
        // Orthogonal patterns.
        let xs = [1.0, -1.0, 1.0, -1.0];
        let ys = [1.0, 1.0, -1.0, -1.0];
        assert!(pearson(&xs, &ys).abs() < 1e-12);
    }

    #[test]
    fn constant_input_is_nan() {
        assert!(pearson(&[1.0, 1.0, 1.0], &[2.0, 3.0, 4.0]).is_nan());
        assert!(pearson(&[1.0], &[2.0]).is_nan());
        assert!(pearson(&[1.0, 2.0], &[2.0]).is_nan());
    }

    #[test]
    fn known_textbook_value() {
        // Anscombe-like small set: r computed independently.
        let xs = [43.0, 21.0, 25.0, 42.0, 57.0, 59.0];
        let ys = [99.0, 65.0, 79.0, 75.0, 87.0, 81.0];
        let r = pearson(&xs, &ys);
        assert!((r - 0.5298).abs() < 1e-3, "r = {r}");
    }

    #[test]
    fn significance_of_strong_correlation() {
        // 10 nearly-collinear points must be significant at 99%.
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + (x % 2.0) * 0.1).collect();
        let test = correlation_significance(&xs, &ys, ConfidenceLevel::P99).unwrap();
        assert!(test.r > 0.99);
        assert!(test.significant);
    }

    #[test]
    fn significance_of_noise_rejected() {
        // A deliberately patternless small sample: not significant.
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let ys = [2.0, -1.0, 3.0, 0.5, 2.5, 0.0];
        let test = correlation_significance(&xs, &ys, ConfidenceLevel::P95).unwrap();
        assert!(!test.significant, "r={} t={}", test.r, test.t_statistic);
    }

    #[test]
    fn perfect_correlation_reports_infinite_t() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [10.0, 20.0, 30.0];
        let test = correlation_significance(&xs, &ys, ConfidenceLevel::P99).unwrap();
        assert!(test.t_statistic.is_infinite());
        assert!(test.significant);
    }

    #[test]
    fn too_few_points_is_none() {
        assert!(correlation_significance(&[1.0, 2.0], &[1.0, 2.0], ConfidenceLevel::P95).is_none());
    }
}

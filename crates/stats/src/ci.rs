//! Student-t confidence intervals.
//!
//! The paper runs 3 replicates of every experiment and reports 95%
//! confidence intervals (§III-B); the wakeup-effect hypothesis is accepted
//! at 99% (§III-C). With n = 3 the normal-approximation interval would be
//! badly anti-conservative, so we use the Student-t critical values. The
//! table below covers the degrees of freedom any of our experiments can
//! produce; intermediate values interpolate conservatively (next lower df).

use crate::descriptive::{mean, std_error};
use serde::{Deserialize, Serialize};

/// Supported confidence levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConfidenceLevel {
    /// 95% two-sided.
    P95,
    /// 99% two-sided.
    P99,
}

/// Two-sided Student-t critical values, indexed by degrees of freedom.
/// Rows: df 1..=30, then 40, 60, 120, ∞.
const T_95: [(u32, f64); 34] = [
    (1, 12.706),
    (2, 4.303),
    (3, 3.182),
    (4, 2.776),
    (5, 2.571),
    (6, 2.447),
    (7, 2.365),
    (8, 2.306),
    (9, 2.262),
    (10, 2.228),
    (11, 2.201),
    (12, 2.179),
    (13, 2.160),
    (14, 2.145),
    (15, 2.131),
    (16, 2.120),
    (17, 2.110),
    (18, 2.101),
    (19, 2.093),
    (20, 2.086),
    (21, 2.080),
    (22, 2.074),
    (23, 2.069),
    (24, 2.064),
    (25, 2.060),
    (26, 2.056),
    (27, 2.052),
    (28, 2.048),
    (29, 2.045),
    (30, 2.042),
    (40, 2.021),
    (60, 2.000),
    (120, 1.980),
    (u32::MAX, 1.960),
];

const T_99: [(u32, f64); 34] = [
    (1, 63.657),
    (2, 9.925),
    (3, 5.841),
    (4, 4.604),
    (5, 4.032),
    (6, 3.707),
    (7, 3.499),
    (8, 3.355),
    (9, 3.250),
    (10, 3.169),
    (11, 3.106),
    (12, 3.055),
    (13, 3.012),
    (14, 2.977),
    (15, 2.947),
    (16, 2.921),
    (17, 2.898),
    (18, 2.878),
    (19, 2.861),
    (20, 2.845),
    (21, 2.831),
    (22, 2.819),
    (23, 2.807),
    (24, 2.797),
    (25, 2.787),
    (26, 2.779),
    (27, 2.771),
    (28, 2.763),
    (29, 2.756),
    (30, 2.750),
    (40, 2.704),
    (60, 2.660),
    (120, 2.617),
    (u32::MAX, 2.576),
];

/// The two-sided Student-t critical value for the given degrees of freedom.
///
/// For df between table rows the next *smaller* tabulated df is used, which
/// errs on the conservative (wider-interval) side. Panics if `df == 0`.
pub fn t_critical(df: u32, level: ConfidenceLevel) -> f64 {
    assert!(df > 0, "t-distribution needs at least 1 degree of freedom");
    let table: &[(u32, f64)] = match level {
        ConfidenceLevel::P95 => &T_95,
        ConfidenceLevel::P99 => &T_99,
    };
    // Pick the largest tabulated df that does not exceed the requested df;
    // a lower df gives a larger critical value, i.e. a wider interval.
    let mut result = table[0].1;
    for &(d, t) in table {
        if d <= df {
            result = t;
        } else {
            break;
        }
    }
    result
}

/// A `mean ± half_width` interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Point estimate (sample mean).
    pub mean: f64,
    /// Half-width of the interval.
    pub half_width: f64,
    /// Level the interval was computed at.
    pub level: ConfidenceLevel,
}

impl ConfidenceInterval {
    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether `x` lies inside the interval.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo() && x <= self.hi()
    }
}

impl std::fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3} ± {:.3}", self.mean, self.half_width)
    }
}

/// Computes a Student-t confidence interval over replicate measurements.
///
/// With a single sample the half-width is reported as `NaN` (unknown
/// spread), matching [`std_error`]'s behaviour.
pub fn confidence_interval(samples: &[f64], level: ConfidenceLevel) -> ConfidenceInterval {
    let m = mean(samples);
    if samples.len() < 2 {
        return ConfidenceInterval {
            mean: m,
            half_width: f64::NAN,
            level,
        };
    }
    let se = std_error(samples);
    let t = t_critical(samples.len() as u32 - 1, level);
    ConfidenceInterval {
        mean: m,
        half_width: t * se,
        level,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_table_exact_rows() {
        assert_eq!(t_critical(2, ConfidenceLevel::P95), 4.303);
        assert_eq!(t_critical(30, ConfidenceLevel::P95), 2.042);
        assert_eq!(t_critical(2, ConfidenceLevel::P99), 9.925);
    }

    #[test]
    fn t_table_interpolation_is_conservative() {
        // df=35 should use the df=30 row (wider), not df=40.
        assert_eq!(t_critical(35, ConfidenceLevel::P95), 2.042);
        // df=1000 uses the df=120 row... no: uses largest row ≤ df that is
        // tabulated, i.e. 120 → 1.980.
        assert_eq!(t_critical(1000, ConfidenceLevel::P95), 1.980);
    }

    #[test]
    fn huge_df_approaches_normal() {
        assert_eq!(t_critical(u32::MAX, ConfidenceLevel::P95), 1.960);
        assert_eq!(t_critical(u32::MAX, ConfidenceLevel::P99), 2.576);
    }

    #[test]
    #[should_panic(expected = "degree")]
    fn zero_df_panics() {
        t_critical(0, ConfidenceLevel::P95);
    }

    #[test]
    fn three_replicates_known_interval() {
        // The paper's protocol: n = 3. samples {1,2,3}: mean 2, sd 1,
        // se 1/sqrt(3), t(df=2, 95%) = 4.303.
        let ci = confidence_interval(&[1.0, 2.0, 3.0], ConfidenceLevel::P95);
        assert_eq!(ci.mean, 2.0);
        let expected = 4.303 / 3f64.sqrt();
        assert!((ci.half_width - expected).abs() < 1e-9);
        assert!(ci.contains(2.0));
        assert!(!ci.contains(6.0));
    }

    #[test]
    fn p99_wider_than_p95() {
        let xs = [10.0, 12.0, 11.0, 13.0, 9.5];
        let w95 = confidence_interval(&xs, ConfidenceLevel::P95).half_width;
        let w99 = confidence_interval(&xs, ConfidenceLevel::P99).half_width;
        assert!(w99 > w95);
    }

    #[test]
    fn constant_samples_zero_width() {
        let ci = confidence_interval(&[7.0; 5], ConfidenceLevel::P95);
        assert_eq!(ci.mean, 7.0);
        assert_eq!(ci.half_width, 0.0);
    }

    #[test]
    fn single_sample_unknown_width() {
        let ci = confidence_interval(&[5.0], ConfidenceLevel::P95);
        assert_eq!(ci.mean, 5.0);
        assert!(ci.half_width.is_nan());
    }

    #[test]
    fn bounds_and_display() {
        let ci = ConfidenceInterval {
            mean: 10.0,
            half_width: 2.0,
            level: ConfidenceLevel::P95,
        };
        assert_eq!(ci.lo(), 8.0);
        assert_eq!(ci.hi(), 12.0);
        assert_eq!(ci.to_string(), "10.000 ± 2.000");
    }
}

//! Deterministic structured event log for the producer-consumer system.
//!
//! Every scheduler decision the simulator (and, best-effort, the native
//! runtime) makes can be emitted as a typed [`TraceEvent`] into a bounded
//! in-memory [`Recorder`]. The stream is the input of the replay oracle in
//! `pc-bench` (`pc_bench::oracle`), which re-derives the system invariants
//! — item conservation, elastic-pool conservation, span ordering,
//! reservation consistency — from the events alone.
//!
//! Determinism rules (these are a contract, mirrored in DESIGN.md):
//!
//! * **No wall-clock, ever.** Events carry sim time as integer
//!   nanoseconds (`t_ns`) plus a logical sequence number (`seq`). The
//!   native runtime stamps events with its replay clock's *sim* time,
//!   which is wall-derived and therefore non-deterministic — native
//!   traces are for conservation checks, not digests.
//! * **No floats in payloads.** Every field is an integer, bool or
//!   string, so the serialised stream and its [`digest`] are
//!   platform-stable.
//! * **Zero cost when disabled.** Instrumentation goes through
//!   [`TraceHandle::record`], whose disabled path is a single `Option`
//!   branch; payload construction is a closure that never runs unless a
//!   recorder is attached.
//! * **Bounded memory.** The recorder stores at most its configured
//!   capacity and counts everything beyond it in
//!   [`TraceLog::dropped`]; the oracle treats a truncated trace as
//!   unverifiable rather than silently passing.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Version of the event schema; bump on any change to [`TraceEvent`]
/// variants or fields so recorded streams are self-describing.
///
/// v2: added `FaultInjected` / `FaultRecovered` (deterministic fault
/// injection, DESIGN.md §10). Zero-fault streams are byte-identical to
/// v1 streams, and the digest covers events only, so golden digests
/// survive the bump.
///
/// v3: added `ItemShed` / `OverloadEntered` / `OverloadCleared`
/// (deadline-aware overload control, DESIGN.md §15). Streams recorded
/// with overload control disabled contain none of the new variants and
/// are byte-identical to v2 streams; golden digests survive the bump
/// for the same reason as v2.
pub const TRACE_SCHEMA_VERSION: u32 = 3;

/// What caused a consumer invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Trigger {
    /// A reserved slot (or periodic timer) fired.
    Scheduled,
    /// The buffer filled before the scheduled wakeup.
    Overflow,
    /// Item-driven dispatch (Mutex/Sem sessions, busy strategies).
    Item,
}

/// One typed observation of the system. Payloads are integers only (see
/// the module docs); identifiers are the plain indices the system uses
/// (`pair` = pair/consumer index, `core` = core index, `owner` = the
/// pair index owning an elastic buffer).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A producer emitted one item for `pair`.
    Produce {
        /// Producing pair index.
        pair: u32,
    },
    /// A consumer dispatched a batch of `batch` items.
    Invoke {
        /// Consuming pair index.
        pair: u32,
        /// Why the consumer ran.
        trigger: Trigger,
        /// Items drained by this invocation.
        batch: u64,
        /// Buffer capacity at dispatch time (0 when not applicable).
        capacity: u64,
    },
    /// End-of-run flush of items still buffered when the run stopped.
    Flush {
        /// Pair index being flushed.
        pair: u32,
        /// Items accounted by the flush.
        drained: u64,
    },
    /// A consumer thread woke from a blocking primitive (native runtime).
    Wakeup {
        /// Pair index that woke.
        pair: u32,
    },
    /// `Core::add_active_span` accepted an execution span.
    CoreSpan {
        /// Core index.
        core: u32,
        /// Span start, sim nanoseconds.
        start_ns: u64,
        /// Span end (exclusive), sim nanoseconds.
        end_ns: u64,
        /// Whether the span closed an idle gap (counted one wakeup).
        wakeup: bool,
    },
    /// PBPL slot selection decided where a consumer wakes next.
    SlotSelect {
        /// Planning pair index.
        pair: u32,
        /// Core the pair is pinned to.
        core: u32,
        /// Chosen slot index.
        slot: u64,
        /// Whether the choice latches onto an existing reservation.
        latched: bool,
        /// Whether the predicted rate overran the buffer (§V-C upsizing
        /// trigger).
        rate_overrun: bool,
    },
    /// A consumer reserved a slot with its core manager.
    SlotReserve {
        /// Core whose manager took the reservation.
        core: u32,
        /// Reserving consumer (pair index).
        consumer: u32,
        /// Reserved slot.
        slot: u64,
        /// The consumer's previous reservation, replaced by this one.
        prev: Option<u64>,
    },
    /// A consumer dropped its reservation.
    SlotRelease {
        /// Core whose manager held the reservation.
        core: u32,
        /// Deregistering consumer.
        consumer: u32,
        /// Slot it held.
        slot: u64,
    },
    /// A slot fired and the manager dispatched its reservation list.
    SlotDispatch {
        /// Core whose slot fired.
        core: u32,
        /// The fired slot.
        slot: u64,
        /// Consumers invoked by this one wakeup (reservation order).
        consumers: Vec<u32>,
    },
    /// An elastic buffer was created against the global pool.
    BufferCreate {
        /// Owning pair index.
        owner: u32,
        /// Initial capacity reserved from the pool.
        capacity: u64,
        /// Pool units available after the reservation.
        pool_available: u64,
        /// The pool's fixed total (`B_g`).
        pool_total: u64,
    },
    /// An elastic buffer requested growth (§V-C upsizing; best-effort,
    /// so `to - from` may be less than `want - from`).
    BufferGrow {
        /// Owning pair index.
        owner: u32,
        /// Capacity before the request.
        from: u64,
        /// Capacity after (what the pool granted).
        to: u64,
        /// Requested target capacity.
        want: u64,
        /// Pool units available after the grant.
        pool_available: u64,
    },
    /// An elastic buffer returned capacity to the pool (§V-C downsizing).
    BufferShrink {
        /// Owning pair index.
        owner: u32,
        /// Capacity before the shrink.
        from: u64,
        /// Capacity after (floored by occupancy and `min_capacity`).
        to: u64,
        /// Pool units available after the release.
        pool_available: u64,
    },
    /// An elastic buffer was dropped, releasing its whole capacity.
    BufferDestroy {
        /// Owning pair index.
        owner: u32,
        /// Units released back to the pool.
        released: u64,
        /// Pool units available after the release.
        pool_available: u64,
    },
    /// A fault from the active `FaultPlan` became effective.
    FaultInjected {
        /// Plan-unique fault id, echoed by the matching `FaultRecovered`.
        id: u32,
        /// Stable fault-kind name (`rate_shock`, `producer_stall`,
        /// `consumer_slowdown`, `timer_drift`, `dropped_wakeup`,
        /// `pool_squeeze`).
        kind: String,
        /// Target pair, `u32::MAX` when not pair-scoped.
        pair: u32,
        /// Target core, `u32::MAX` when not core-scoped.
        core: u32,
        /// Kind-specific scalar: fixed-point factor, delay in ns, or —
        /// for `pool_squeeze` — the units actually reserved away.
        param: u64,
        /// Pool units available after injection; `u64::MAX` when the
        /// strategy has no pool (the oracle skips pool accounting then).
        pool_available: u64,
    },
    /// The admission controller rejected one arriving item for `pair`
    /// (DESIGN.md §15). A shed item still counts as produced — the
    /// conservation law over a stream with sheds is
    /// `produced == consumed + shed` — so every `ItemShed` follows the
    /// `Produce` of the same arrival.
    ItemShed {
        /// Pair whose arrival was shed.
        pair: u32,
    },
    /// A pair's admission controller tripped into overload: subsequent
    /// arrivals are shed until the matching `OverloadCleared`.
    OverloadEntered {
        /// Pair entering overload.
        pair: u32,
        /// Buffered occupancy (backlog + buffer) at the trip.
        occupancy: u64,
        /// Whether the fleet supervisor forced the window (correlated
        /// overload escalation) rather than the pair's own estimator.
        escalated: bool,
    },
    /// A pair's overload window closed; admission resumed.
    OverloadCleared {
        /// Pair leaving overload.
        pair: u32,
        /// Items shed during this window — the oracle cross-checks
        /// Σ shed over a pair's windows against its `ItemShed` count.
        shed: u64,
    },
    /// A fault's window closed and its effects were rolled back.
    FaultRecovered {
        /// Id of the fault that cleared.
        id: u32,
        /// Stable fault-kind name (matches the injection).
        kind: String,
        /// Target pair, `u32::MAX` when not pair-scoped.
        pair: u32,
        /// Target core, `u32::MAX` when not core-scoped.
        core: u32,
        /// Kind-specific scalar: for `pool_squeeze` the units returned
        /// to the pool (must equal the injected grant); for
        /// `dropped_wakeup` the wakeups swallowed during the window.
        param: u64,
        /// Pool units available after recovery; `u64::MAX` when no pool.
        pool_available: u64,
    },
}

impl TraceEvent {
    /// Compact human-readable form for diagnostics (replay divergence
    /// messages): variant name plus the discriminating fields, e.g.
    /// `Invoke(pair=3, trigger=Overflow, batch=25)`. Not part of the
    /// canonical serialisation — digests use [`event_to_json`].
    pub fn summary(&self) -> String {
        match self {
            TraceEvent::Produce { pair } => format!("Produce(pair={pair})"),
            TraceEvent::Invoke {
                pair,
                trigger,
                batch,
                capacity,
            } => format!("Invoke(pair={pair}, trigger={trigger:?}, batch={batch}, cap={capacity})"),
            TraceEvent::Flush { pair, drained } => {
                format!("Flush(pair={pair}, drained={drained})")
            }
            TraceEvent::Wakeup { pair } => format!("Wakeup(pair={pair})"),
            TraceEvent::CoreSpan {
                core,
                start_ns,
                end_ns,
                wakeup,
            } => format!("CoreSpan(core={core}, [{start_ns}, {end_ns}), wakeup={wakeup})"),
            TraceEvent::SlotSelect {
                pair, core, slot, ..
            } => format!("SlotSelect(pair={pair}, core={core}, slot={slot})"),
            TraceEvent::SlotReserve {
                core,
                consumer,
                slot,
                prev,
            } => {
                format!("SlotReserve(core={core}, consumer={consumer}, slot={slot}, prev={prev:?})")
            }
            TraceEvent::SlotRelease {
                core,
                consumer,
                slot,
            } => format!("SlotRelease(core={core}, consumer={consumer}, slot={slot})"),
            TraceEvent::SlotDispatch {
                core,
                slot,
                consumers,
            } => format!("SlotDispatch(core={core}, slot={slot}, consumers={consumers:?})"),
            TraceEvent::BufferCreate {
                owner, capacity, ..
            } => format!("BufferCreate(owner={owner}, capacity={capacity})"),
            TraceEvent::BufferGrow {
                owner,
                from,
                to,
                want,
                ..
            } => format!("BufferGrow(owner={owner}, {from}->{to}, want={want})"),
            TraceEvent::BufferShrink {
                owner, from, to, ..
            } => format!("BufferShrink(owner={owner}, {from}->{to})"),
            TraceEvent::BufferDestroy {
                owner, released, ..
            } => format!("BufferDestroy(owner={owner}, released={released})"),
            TraceEvent::FaultInjected {
                id, kind, param, ..
            } => format!("FaultInjected(id={id}, kind={kind}, param={param})"),
            TraceEvent::ItemShed { pair } => format!("ItemShed(pair={pair})"),
            TraceEvent::OverloadEntered {
                pair,
                occupancy,
                escalated,
            } => format!(
                "OverloadEntered(pair={pair}, occupancy={occupancy}, escalated={escalated})"
            ),
            TraceEvent::OverloadCleared { pair, shed } => {
                format!("OverloadCleared(pair={pair}, shed={shed})")
            }
            TraceEvent::FaultRecovered {
                id, kind, param, ..
            } => format!("FaultRecovered(id={id}, kind={kind}, param={param})"),
        }
    }
}

/// One recorded event: a [`TraceEvent`] stamped with its logical sequence
/// number and sim time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// Logical sequence number, strictly increasing per recorder
    /// (dropped events still consume numbers).
    pub seq: u64,
    /// Sim time of the emission, nanoseconds since run start.
    pub t_ns: u64,
    /// The observation itself.
    pub kind: TraceEvent,
}

impl Event {
    /// Compact human-readable form: the payload summary stamped with
    /// sim time and sequence number.
    pub fn summary(&self) -> String {
        format!(
            "{} at t={}ns seq={}",
            self.kind.summary(),
            self.t_ns,
            self.seq
        )
    }
}

/// A finished recording: the bounded event stream plus how much of the
/// run overflowed the bound.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceLog {
    /// Schema version the events were recorded under.
    pub schema_version: u32,
    /// Events in emission order.
    pub events: Vec<Event>,
    /// Events discarded after the capacity bound was hit.
    pub dropped: u64,
}

impl TraceLog {
    /// An empty log at the current schema version.
    pub fn empty() -> Self {
        TraceLog {
            schema_version: TRACE_SCHEMA_VERSION,
            events: Vec::new(),
            dropped: 0,
        }
    }

    /// FNV-1a digest of the event stream (see [`digest`]).
    pub fn digest(&self) -> u64 {
        digest(&self.events)
    }
}

struct RecorderInner {
    events: Vec<Event>,
    dropped: u64,
}

/// Bounded in-memory event sink. Shared via `Arc`; clone cheap
/// [`TraceHandle`]s from it to thread through the system.
///
/// The recorder keeps a "current sim time" that the simulation engine
/// updates on every event pop ([`Recorder::set_now`] via
/// [`TraceHandle::set_now`]), so emission sites don't need to plumb
/// timestamps; native-runtime sites stamp explicitly with
/// [`TraceHandle::record_at`].
pub struct Recorder {
    inner: Mutex<RecorderInner>,
    now_ns: AtomicU64,
    capacity: usize,
}

/// Default recorder bound: comfortably holds a CI-duration suite cell
/// (~100k events) while capping worst-case memory per live cell.
pub const DEFAULT_RECORDER_CAPACITY: usize = 2_000_000;

impl Recorder {
    /// Creates a recorder bounded to `capacity` events.
    pub fn bounded(capacity: usize) -> Arc<Self> {
        Arc::new(Recorder {
            inner: Mutex::new(RecorderInner {
                events: Vec::new(),
                dropped: 0,
            }),
            now_ns: AtomicU64::new(0),
            capacity,
        })
    }

    /// Creates a recorder with [`DEFAULT_RECORDER_CAPACITY`].
    pub fn new() -> Arc<Self> {
        Self::bounded(DEFAULT_RECORDER_CAPACITY)
    }

    /// A recording handle onto this recorder.
    pub fn handle(self: &Arc<Self>) -> TraceHandle {
        TraceHandle {
            recorder: Some(Arc::clone(self)),
        }
    }

    /// Updates the recorder's notion of "now" (sim nanoseconds).
    pub fn set_now(&self, t_ns: u64) {
        self.now_ns.store(t_ns, Ordering::Relaxed);
    }

    fn push(&self, t_ns: u64, kind: TraceEvent) {
        let mut inner = self.inner.lock().expect("recorder poisoned");
        if inner.events.len() >= self.capacity {
            inner.dropped += 1;
            return;
        }
        let seq = inner.events.len() as u64 + inner.dropped;
        inner.events.push(Event { seq, t_ns, kind });
    }

    /// Takes the recording, leaving the recorder empty (sequence numbers
    /// restart from zero).
    pub fn take(&self) -> TraceLog {
        let mut inner = self.inner.lock().expect("recorder poisoned");
        let events = std::mem::take(&mut inner.events);
        let dropped = std::mem::take(&mut inner.dropped);
        TraceLog {
            schema_version: TRACE_SCHEMA_VERSION,
            events,
            dropped,
        }
    }

    /// Clones the recording without draining it.
    pub fn snapshot(&self) -> TraceLog {
        let inner = self.inner.lock().expect("recorder poisoned");
        TraceLog {
            schema_version: TRACE_SCHEMA_VERSION,
            events: inner.events.clone(),
            dropped: inner.dropped,
        }
    }
}

/// Cheap, cloneable emission endpoint. Disabled by default — the
/// disabled path of every `record*` call is a single branch and the
/// payload closure never runs.
#[derive(Clone, Default)]
pub struct TraceHandle {
    recorder: Option<Arc<Recorder>>,
}

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceHandle")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl TraceHandle {
    /// A handle that records nothing.
    pub const fn disabled() -> Self {
        TraceHandle { recorder: None }
    }

    /// Whether a recorder is attached.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.recorder.is_some()
    }

    /// Records an event stamped with the recorder's current sim time.
    /// `make` only runs when a recorder is attached.
    #[inline]
    pub fn record(&self, make: impl FnOnce() -> TraceEvent) {
        if let Some(rec) = &self.recorder {
            let t_ns = rec.now_ns.load(Ordering::Relaxed);
            rec.push(t_ns, make());
        }
    }

    /// Records an event at an explicit sim time (native-runtime sites,
    /// where no engine maintains the recorder clock).
    #[inline]
    pub fn record_at(&self, t_ns: u64, make: impl FnOnce() -> TraceEvent) {
        if let Some(rec) = &self.recorder {
            rec.push(t_ns, make());
        }
    }

    /// Forwards the simulation clock to the recorder (no-op when
    /// disabled).
    #[inline]
    pub fn set_now(&self, t_ns: u64) {
        if let Some(rec) = &self.recorder {
            rec.set_now(t_ns);
        }
    }
}

/// FNV-1a (64-bit) over the canonical single-line JSON of each event,
/// newline-separated — exactly the bytes a JSONL export of the stream
/// contains, so an exported file and an in-memory log always agree.
///
/// Payloads are integers/bools/strings only (module contract), so the
/// digest is platform-stable and bit-deterministic per seed.
pub fn digest(events: &[Event]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x1_0000_01b3;
    let mut hash = FNV_OFFSET;
    let mut step = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    };
    for ev in events {
        let line = event_to_json(ev);
        step(line.as_bytes());
        step(b"\n");
    }
    hash
}

/// Canonical single-line JSON for one event (insertion-ordered keys, no
/// whitespace — the shim's compact form).
pub fn event_to_json(ev: &Event) -> String {
    serde_json::to_string(ev).expect("event serialisation is infallible")
}

/// Parses one event back from its canonical JSON line.
pub fn event_from_json(line: &str) -> Result<Event, String> {
    serde_json::from_str(line).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(pair: u32) -> TraceEvent {
        TraceEvent::Produce { pair }
    }

    #[test]
    fn disabled_handle_is_inert() {
        let h = TraceHandle::disabled();
        assert!(!h.is_enabled());
        // The payload closure must not run.
        h.record(|| panic!("closure ran on a disabled handle"));
        h.record_at(5, || panic!("closure ran on a disabled handle"));
        h.set_now(9);
    }

    #[test]
    fn records_are_stamped_with_seq_and_now() {
        let rec = Recorder::new();
        let h = rec.handle();
        h.set_now(100);
        h.record(|| ev(0));
        h.set_now(250);
        h.record(|| ev(1));
        h.record_at(7, || ev(2));
        let log = rec.take();
        assert_eq!(log.dropped, 0);
        assert_eq!(log.events.len(), 3);
        assert_eq!((log.events[0].seq, log.events[0].t_ns), (0, 100));
        assert_eq!((log.events[1].seq, log.events[1].t_ns), (1, 250));
        assert_eq!((log.events[2].seq, log.events[2].t_ns), (2, 7));
        // take() drains.
        assert!(rec.take().events.is_empty());
    }

    #[test]
    fn capacity_bound_counts_drops() {
        let rec = Recorder::bounded(2);
        let h = rec.handle();
        for i in 0..5 {
            h.record(|| ev(i));
        }
        let log = rec.take();
        assert_eq!(log.events.len(), 2);
        assert_eq!(log.dropped, 3);
    }

    #[test]
    fn json_roundtrip_all_variants() {
        let variants = vec![
            TraceEvent::Produce { pair: 3 },
            TraceEvent::Invoke {
                pair: 1,
                trigger: Trigger::Overflow,
                batch: 25,
                capacity: 50,
            },
            TraceEvent::Flush {
                pair: 0,
                drained: 7,
            },
            TraceEvent::Wakeup { pair: 2 },
            TraceEvent::CoreSpan {
                core: 1,
                start_ns: 10,
                end_ns: 20,
                wakeup: true,
            },
            TraceEvent::SlotSelect {
                pair: 0,
                core: 0,
                slot: 41,
                latched: true,
                rate_overrun: false,
            },
            TraceEvent::SlotReserve {
                core: 0,
                consumer: 4,
                slot: 9,
                prev: Some(7),
            },
            TraceEvent::SlotReserve {
                core: 0,
                consumer: 4,
                slot: 9,
                prev: None,
            },
            TraceEvent::SlotRelease {
                core: 1,
                consumer: 0,
                slot: 3,
            },
            TraceEvent::SlotDispatch {
                core: 0,
                slot: 12,
                consumers: vec![0, 2, 4],
            },
            TraceEvent::BufferCreate {
                owner: 0,
                capacity: 25,
                pool_available: 25,
                pool_total: 50,
            },
            TraceEvent::BufferGrow {
                owner: 1,
                from: 25,
                to: 30,
                want: 40,
                pool_available: 0,
            },
            TraceEvent::BufferShrink {
                owner: 1,
                from: 30,
                to: 10,
                pool_available: 20,
            },
            TraceEvent::BufferDestroy {
                owner: 1,
                released: 10,
                pool_available: 50,
            },
            TraceEvent::FaultInjected {
                id: 0,
                kind: "pool_squeeze".to_string(),
                pair: u32::MAX,
                core: u32::MAX,
                param: 35,
                pool_available: 15,
            },
            TraceEvent::FaultRecovered {
                id: 0,
                kind: "dropped_wakeup".to_string(),
                pair: u32::MAX,
                core: 1,
                param: 4,
                pool_available: u64::MAX,
            },
            TraceEvent::ItemShed { pair: 3 },
            TraceEvent::OverloadEntered {
                pair: 3,
                occupancy: 47,
                escalated: false,
            },
            TraceEvent::OverloadEntered {
                pair: 1,
                occupancy: 0,
                escalated: true,
            },
            TraceEvent::OverloadCleared { pair: 3, shed: 12 },
        ];
        for (i, kind) in variants.into_iter().enumerate() {
            let event = Event {
                seq: i as u64,
                t_ns: 1_000 + i as u64,
                kind,
            };
            let line = event_to_json(&event);
            let back = event_from_json(&line).expect("roundtrip parses");
            assert_eq!(back, event, "roundtrip mismatch for {line}");
        }
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let make = |pair| {
            vec![
                Event {
                    seq: 0,
                    t_ns: 5,
                    kind: ev(pair),
                },
                Event {
                    seq: 1,
                    t_ns: 9,
                    kind: TraceEvent::Flush { pair, drained: 1 },
                },
            ]
        };
        let a = digest(&make(0));
        let b = digest(&make(0));
        let c = digest(&make(1));
        assert_eq!(a, b, "same stream, same digest");
        assert_ne!(a, c, "different stream, different digest");
        assert_ne!(digest(&[]), a);
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let rec = Recorder::new();
        let h = rec.handle();
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let h = h.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        h.record_at(u64::from(t), || ev(t));
                    }
                });
            }
        });
        let log = rec.take();
        assert_eq!(log.events.len(), 400);
        // Sequence numbers are unique and dense.
        let mut seqs: Vec<u64> = log.events.iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..400).collect::<Vec<u64>>());
    }
}

//! Deterministic fault-injection plans.
//!
//! A [`FaultPlan`] is a schedule of typed faults, each active over a
//! half-open sim-time window `[start_ns, end_ns)`. Plans are either built
//! explicitly (tests) or expanded from a `(scenario, seed)` pair with the
//! sim RNG — so a plan is a pure function of its inputs and every fault
//! fires at integer sim-time, never wall-clock.
//!
//! Two fault families exist:
//!
//! * **Workload faults** ([`FaultKind::RateShock`],
//!   [`FaultKind::ProducerStall`]) transform the production trace itself
//!   *before* the run via [`FaultPlan::apply_workload_faults`]. The item
//!   count is preserved exactly — only timestamps move — so item
//!   conservation is checkable through the fault.
//! * **Runtime faults** (consumer slowdown, timer drift, dropped wakeup,
//!   pool squeeze) are interpreted by the simulator, which schedules
//!   `FaultStart`/`FaultEnd` events at the window edges and emits
//!   `FaultInjected`/`FaultRecovered` trace events.
//!
//! The zero-fault plan is free: an empty plan schedules nothing, draws no
//! RNG, and leaves every run bit-identical to a build without this crate.

use pc_sim::{SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// Sentinel for "not pair/core scoped" in trace-event fields.
pub const NO_TARGET: u32 = u32::MAX;

/// The typed fault vocabulary. All parameters are integers (fixed-point
/// `_x1000` where a factor is needed) so plans serialize and digest
/// bit-stably.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Producer `pair` emits at `factor_x1000 / 1000` times its nominal
    /// rate inside the window: arrivals are compressed toward the window
    /// start (a burst), item count unchanged.
    RateShock { pair: u32, factor_x1000: u32 },
    /// Producer `pair` stalls: every arrival inside the window is
    /// deferred to the window end and released as one catch-up dump.
    ProducerStall { pair: u32 },
    /// Consumer `pair`'s per-item/batch service time is multiplied by
    /// `factor_x1000 / 1000` while the fault is active.
    ConsumerSlowdown { pair: u32, factor_x1000: u32 },
    /// Timers armed on `core` while the fault is active fire `delay_ns`
    /// late (slot-timer jitter / late fire).
    TimerDrift { core: u32, delay_ns: u64 },
    /// Scheduled wakeups on `core` are swallowed while the fault is
    /// active; recovery re-plans from the reservation book.
    DroppedWakeup { core: u32 },
    /// Up to `units` units of the elastic global pool are reserved away
    /// for the duration of the window (transient capacity squeeze).
    PoolSqueeze { units: u32 },
    /// Like [`FaultKind::PoolSqueeze`] but drains only pool shard
    /// `shard` (taken modulo the run's shard count): the squeeze lands
    /// on one sub-pool's ledger, exercising per-shard conservation.
    PoolSqueezeShard { shard: u32, units: u32 },
}

impl FaultKind {
    /// Stable snake_case name used in trace-event payloads.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::RateShock { .. } => "rate_shock",
            FaultKind::ProducerStall { .. } => "producer_stall",
            FaultKind::ConsumerSlowdown { .. } => "consumer_slowdown",
            FaultKind::TimerDrift { .. } => "timer_drift",
            FaultKind::DroppedWakeup { .. } => "dropped_wakeup",
            FaultKind::PoolSqueeze { .. } => "pool_squeeze",
            FaultKind::PoolSqueezeShard { .. } => "pool_squeeze_shard",
        }
    }

    /// Target pair, or [`NO_TARGET`] when the fault is not pair-scoped.
    pub fn pair(&self) -> u32 {
        match *self {
            FaultKind::RateShock { pair, .. }
            | FaultKind::ProducerStall { pair }
            | FaultKind::ConsumerSlowdown { pair, .. } => pair,
            _ => NO_TARGET,
        }
    }

    /// Target core, or [`NO_TARGET`] when the fault is not core-scoped.
    pub fn core(&self) -> u32 {
        match *self {
            FaultKind::TimerDrift { core, .. } | FaultKind::DroppedWakeup { core } => core,
            _ => NO_TARGET,
        }
    }

    /// The fault's scalar parameter as traced at injection time (factor,
    /// delay, or requested units; zero when parameterless).
    pub fn param(&self) -> u64 {
        match *self {
            FaultKind::RateShock { factor_x1000, .. }
            | FaultKind::ConsumerSlowdown { factor_x1000, .. } => factor_x1000 as u64,
            FaultKind::TimerDrift { delay_ns, .. } => delay_ns,
            FaultKind::PoolSqueeze { units } | FaultKind::PoolSqueezeShard { units, .. } => {
                units as u64
            }
            FaultKind::ProducerStall { .. } | FaultKind::DroppedWakeup { .. } => 0,
        }
    }

    /// Whether the fault rewrites the production trace (vs. being
    /// interpreted at runtime).
    pub fn is_workload(&self) -> bool {
        matches!(
            self,
            FaultKind::RateShock { .. } | FaultKind::ProducerStall { .. }
        )
    }
}

/// One scheduled fault: active over `[start_ns, end_ns)` sim-time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fault {
    /// Plan-unique id, echoed by `FaultInjected`/`FaultRecovered` events.
    pub id: u32,
    /// Window start, integer sim nanoseconds.
    pub start_ns: u64,
    /// Window end (exclusive), integer sim nanoseconds.
    pub end_ns: u64,
    /// What goes wrong.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults, sorted by `(start_ns, id)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

/// Inputs [`FaultPlan::expand`] scales its windows and targets by.
#[derive(Debug, Clone, Copy)]
pub struct ExpandEnv {
    /// Run horizon in sim nanoseconds.
    pub horizon_ns: u64,
    /// Number of producer-consumer pairs.
    pub pairs: u32,
    /// Number of cores.
    pub cores: u32,
    /// Total units in the elastic global pool (B₀·M), for sizing
    /// squeezes. Zero when the strategy has no pool.
    pub pool_total: u64,
}

/// Canonical fault scenarios the chaos sweep iterates over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultScenario {
    /// No faults; the control row of every chaos table.
    Baseline,
    /// One producer bursts at 3–5× its nominal rate.
    RateShock,
    /// One producer stalls, then dumps the backlog at once.
    ProducerStall,
    /// One consumer's service time inflates 2–4×.
    ConsumerSlowdown,
    /// One core's timers fire late.
    TimerDrift,
    /// One core's scheduled wakeups are swallowed.
    DroppedWakeup,
    /// The global pool transiently loses 40–70% of its units.
    PoolSqueeze,
    /// One of each fault kind, staggered across the horizon.
    Chaos,
    /// Correlated overload: *every* producer rate-shocks 4–6×
    /// simultaneously in one shared mid-run window — the flash-crowd
    /// shape the fleet supervisor's escalation exists for
    /// (DESIGN.md §15).
    FlashCrowd,
    /// Correlated capacity loss: three staggered, overlapping pool
    /// squeezes of 25–40% each, so the pool drains in waves instead of
    /// one step.
    CascadingSqueeze,
}

impl FaultScenario {
    /// Every *chaos-sweep* scenario, in canonical (output) order.
    ///
    /// The correlated overload scenarios ([`FaultScenario::FlashCrowd`],
    /// [`FaultScenario::CascadingSqueeze`]) are deliberately excluded:
    /// the chaos sweep's grid — and therefore `chaos.json` and its
    /// golden digests — is pinned to this list (the same precedent that
    /// keeps [`FaultKind::PoolSqueezeShard`] out of the generators).
    /// They are reachable via [`Self::correlated`], the overload sweep,
    /// and [`Self::from_name`].
    pub fn all() -> [FaultScenario; 8] {
        [
            FaultScenario::Baseline,
            FaultScenario::RateShock,
            FaultScenario::ProducerStall,
            FaultScenario::ConsumerSlowdown,
            FaultScenario::TimerDrift,
            FaultScenario::DroppedWakeup,
            FaultScenario::PoolSqueeze,
            FaultScenario::Chaos,
        ]
    }

    /// The correlated overload scenarios (overload sweep only; not part
    /// of [`Self::all`]).
    pub fn correlated() -> [FaultScenario; 2] {
        [FaultScenario::FlashCrowd, FaultScenario::CascadingSqueeze]
    }

    /// Stable display / filter name.
    pub fn name(&self) -> &'static str {
        match self {
            FaultScenario::Baseline => "baseline",
            FaultScenario::RateShock => "rate_shock",
            FaultScenario::ProducerStall => "producer_stall",
            FaultScenario::ConsumerSlowdown => "consumer_slowdown",
            FaultScenario::TimerDrift => "timer_drift",
            FaultScenario::DroppedWakeup => "dropped_wakeup",
            FaultScenario::PoolSqueeze => "pool_squeeze",
            FaultScenario::Chaos => "chaos",
            FaultScenario::FlashCrowd => "flash_crowd",
            FaultScenario::CascadingSqueeze => "cascading_squeeze",
        }
    }

    /// Inverse of [`Self::name`], used by trace replay to re-expand a
    /// recorded cell's fault plan from its `CellMeta` scenario field.
    /// Covers the correlated scenarios too, so overload-sweep exports
    /// replay even though [`Self::all`] excludes them.
    pub fn from_name(name: &str) -> Option<FaultScenario> {
        FaultScenario::all()
            .into_iter()
            .chain(FaultScenario::correlated())
            .find(|s| s.name() == name)
    }
}

/// FNV-1a over a byte string; used to derive a per-scenario RNG stream
/// from the run seed so scenarios never share draws.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

impl FaultPlan {
    /// The zero-fault plan.
    pub fn empty() -> Self {
        FaultPlan { faults: Vec::new() }
    }

    /// Wraps explicit faults, sorting by `(start_ns, id)`.
    pub fn new(mut faults: Vec<Fault>) -> Self {
        faults.sort_by_key(|f| (f.start_ns, f.id));
        FaultPlan { faults }
    }

    /// Whether the plan schedules anything.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// The schedule, sorted by `(start_ns, id)`.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Expands a scenario into a concrete plan. Pure in
    /// `(scenario, seed, env)`: the RNG stream is derived from the seed
    /// and the scenario name, windows scale with the horizon, and all
    /// arithmetic is integer.
    pub fn expand(scenario: FaultScenario, seed: u64, env: &ExpandEnv) -> FaultPlan {
        if matches!(scenario, FaultScenario::Baseline) || env.horizon_ns == 0 {
            return FaultPlan::empty();
        }
        let mut rng = SimRng::new(seed ^ fnv1a(scenario.name().as_bytes()));
        match scenario {
            FaultScenario::FlashCrowd => return expand_flash_crowd(&mut rng, env),
            FaultScenario::CascadingSqueeze => return expand_cascading_squeeze(&mut rng, env),
            _ => {}
        }
        let kinds: Vec<fn(&mut SimRng, &ExpandEnv) -> FaultKind> = match scenario {
            FaultScenario::Baseline => unreachable!(),
            FaultScenario::RateShock => vec![gen_rate_shock],
            FaultScenario::ProducerStall => vec![gen_producer_stall],
            FaultScenario::ConsumerSlowdown => vec![gen_consumer_slowdown],
            FaultScenario::TimerDrift => vec![gen_timer_drift],
            FaultScenario::DroppedWakeup => vec![gen_dropped_wakeup],
            FaultScenario::PoolSqueeze => vec![gen_pool_squeeze],
            FaultScenario::Chaos => vec![
                gen_rate_shock,
                gen_producer_stall,
                gen_consumer_slowdown,
                gen_timer_drift,
                gen_dropped_wakeup,
                gen_pool_squeeze,
            ],
            FaultScenario::FlashCrowd | FaultScenario::CascadingSqueeze => {
                unreachable!("expanded above")
            }
        };
        let lanes = kinds.len() as u64;
        let mut faults = Vec::with_capacity(kinds.len());
        for (i, gen) in kinds.iter().enumerate() {
            // Stagger windows across lanes so chaos faults overlap only
            // mildly; a single-kind scenario gets the whole mid-run lane.
            let lane = env.horizon_ns / lanes;
            let lane_start = lane * i as u64;
            // Start 20–40% into the lane, run for 25–40% of it: the fault
            // both starts and clears well inside the run, so recovery is
            // observable before the end-of-run flush.
            let start_ns = lane_start + lane / 5 + rng.next_below(lane / 5 + 1);
            let dur = lane / 4 + rng.next_below(lane * 3 / 20 + 1);
            let end_ns = (start_ns + dur).min(env.horizon_ns.saturating_sub(1));
            let kind = gen(&mut rng, env);
            if end_ns <= start_ns {
                continue;
            }
            faults.push(Fault {
                id: i as u32,
                start_ns,
                end_ns,
                kind,
            });
        }
        FaultPlan::new(faults)
    }

    /// Applies every workload fault targeting `pair` to its production
    /// times, in schedule order. Transformations move timestamps but
    /// never add or remove items; the result is re-sorted and clamped to
    /// `[0, horizon)` so it stays a valid trace.
    pub fn apply_workload_faults(&self, pair: u32, times: &mut [SimTime], horizon: SimTime) {
        let mut touched = false;
        for f in &self.faults {
            if f.kind.pair() != pair || !f.kind.is_workload() {
                continue;
            }
            touched = true;
            let (s, e) = (f.start_ns, f.end_ns);
            match f.kind {
                FaultKind::RateShock { factor_x1000, .. } => {
                    let k = factor_x1000.max(1000) as u128;
                    for t in times.iter_mut() {
                        let ns = t.as_nanos();
                        if ns >= s && ns < e {
                            let compressed = ((ns - s) as u128 * 1000 / k) as u64;
                            *t = SimTime::from_nanos(s + compressed);
                        }
                    }
                }
                FaultKind::ProducerStall { .. } => {
                    let release = e.min(horizon.as_nanos().saturating_sub(1));
                    for t in times.iter_mut() {
                        let ns = t.as_nanos();
                        if ns >= s && ns < e {
                            *t = SimTime::from_nanos(release);
                        }
                    }
                }
                _ => unreachable!("is_workload filtered"),
            }
        }
        if touched {
            times.sort_unstable();
        }
    }
}

fn gen_rate_shock(rng: &mut SimRng, env: &ExpandEnv) -> FaultKind {
    FaultKind::RateShock {
        pair: rng.next_below(env.pairs.max(1) as u64) as u32,
        factor_x1000: 3000 + 500 * rng.next_below(5) as u32,
    }
}

fn gen_producer_stall(rng: &mut SimRng, env: &ExpandEnv) -> FaultKind {
    FaultKind::ProducerStall {
        pair: rng.next_below(env.pairs.max(1) as u64) as u32,
    }
}

fn gen_consumer_slowdown(rng: &mut SimRng, env: &ExpandEnv) -> FaultKind {
    FaultKind::ConsumerSlowdown {
        pair: rng.next_below(env.pairs.max(1) as u64) as u32,
        factor_x1000: 2000 + 500 * rng.next_below(5) as u32,
    }
}

fn gen_timer_drift(rng: &mut SimRng, env: &ExpandEnv) -> FaultKind {
    // A few milliseconds of drift: comparable to the Δ=25ms slot width
    // at the suite's horizons, but bounded so huge horizons don't push
    // every fire past end-of-run.
    let base = (env.horizon_ns / 100).clamp(1_000_000, 10_000_000);
    FaultKind::TimerDrift {
        core: rng.next_below(env.cores.max(1) as u64) as u32,
        delay_ns: base + rng.next_below(base / 2 + 1),
    }
}

fn gen_dropped_wakeup(rng: &mut SimRng, env: &ExpandEnv) -> FaultKind {
    FaultKind::DroppedWakeup {
        core: rng.next_below(env.cores.max(1) as u64) as u32,
    }
}

fn gen_pool_squeeze(rng: &mut SimRng, env: &ExpandEnv) -> FaultKind {
    let frac = 40 + rng.next_below(31); // 40–70% of the pool
    FaultKind::PoolSqueeze {
        units: (env.pool_total * frac / 100) as u32,
    }
}

/// Flash crowd: one shared window 30–40% into the run, 25–35% of the
/// horizon long, in which *every* producer rate-shocks 4–6× while
/// *every* consumer's service time inflates 30–50× (the surge evicts
/// working sets and convoys the serving side onto its slow path — the
/// degradation that turns a flash crowd into genuine overload rather
/// than a burst the drains absorb: combined demand exceeds a dedicated
/// core). All pairs share the window edges — the correlation is the
/// point.
fn expand_flash_crowd(rng: &mut SimRng, env: &ExpandEnv) -> FaultPlan {
    let h = env.horizon_ns;
    let start_ns = h * 3 / 10 + rng.next_below(h / 10 + 1);
    let dur = h / 4 + rng.next_below(h / 10 + 1);
    let end_ns = (start_ns + dur).min(h.saturating_sub(1));
    if end_ns <= start_ns {
        return FaultPlan::empty();
    }
    let pairs = env.pairs.max(1);
    let mut faults: Vec<Fault> = (0..pairs)
        .map(|p| Fault {
            id: p,
            start_ns,
            end_ns,
            kind: FaultKind::RateShock {
                pair: p,
                factor_x1000: 4000 + 500 * rng.next_below(5) as u32,
            },
        })
        .collect();
    faults.extend((0..pairs).map(|p| Fault {
        id: pairs + p,
        start_ns,
        end_ns,
        kind: FaultKind::ConsumerSlowdown {
            pair: p,
            factor_x1000: 30000 + 5000 * rng.next_below(5) as u32,
        },
    }));
    FaultPlan::new(faults)
}

/// Cascading squeeze: three pool squeezes of 25–40% each whose windows
/// are staggered one sixth of the horizon apart but last about two
/// sixths, so each wave lands before the previous one recovers.
fn expand_cascading_squeeze(rng: &mut SimRng, env: &ExpandEnv) -> FaultPlan {
    let h = env.horizon_ns;
    let step = h / 6;
    let mut faults = Vec::new();
    for k in 0..3u64 {
        let start_ns = h / 5 + k * step + rng.next_below(step / 4 + 1);
        let dur = step * 2 + rng.next_below(step / 2 + 1);
        let end_ns = (start_ns + dur).min(h.saturating_sub(1));
        if end_ns <= start_ns {
            continue;
        }
        let frac = 25 + rng.next_below(16); // 25–40% of the pool each
        faults.push(Fault {
            id: k as u32,
            start_ns,
            end_ns,
            kind: FaultKind::PoolSqueeze {
                units: (env.pool_total * frac / 100) as u32,
            },
        });
    }
    FaultPlan::new(faults)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> ExpandEnv {
        ExpandEnv {
            horizon_ns: 1_000_000_000,
            pairs: 4,
            cores: 2,
            pool_total: 100,
        }
    }

    #[test]
    fn baseline_is_empty() {
        assert!(FaultPlan::expand(FaultScenario::Baseline, 1, &env()).is_empty());
    }

    #[test]
    fn expansion_is_deterministic_per_seed_and_scenario() {
        for sc in FaultScenario::all() {
            let a = FaultPlan::expand(sc, 7, &env());
            let b = FaultPlan::expand(sc, 7, &env());
            assert_eq!(a, b, "{}", sc.name());
        }
        let a = FaultPlan::expand(FaultScenario::Chaos, 1, &env());
        let b = FaultPlan::expand(FaultScenario::Chaos, 2, &env());
        assert_ne!(a, b, "different seeds must differ");
    }

    #[test]
    fn windows_are_sorted_inside_horizon_and_targets_in_range() {
        let e = env();
        for sc in FaultScenario::all() {
            let plan = FaultPlan::expand(sc, 13, &e);
            let mut prev = 0;
            for f in plan.faults() {
                assert!(f.start_ns >= prev, "sorted by start");
                prev = f.start_ns;
                assert!(f.start_ns < f.end_ns);
                assert!(f.end_ns < e.horizon_ns);
                let p = f.kind.pair();
                assert!(p == NO_TARGET || p < e.pairs);
                let c = f.kind.core();
                assert!(c == NO_TARGET || c < e.cores);
            }
        }
        let chaos = FaultPlan::expand(FaultScenario::Chaos, 13, &e);
        assert_eq!(chaos.len(), 6, "one fault per kind");
    }

    #[test]
    fn correlated_scenarios_stay_out_of_the_chaos_grid() {
        // `all()` is pinned to 8: chaos.json's grid (and its digests)
        // depend on it. The correlated scenarios resolve by name only.
        assert_eq!(FaultScenario::all().len(), 8);
        for sc in FaultScenario::correlated() {
            assert!(!FaultScenario::all().contains(&sc));
            assert_eq!(FaultScenario::from_name(sc.name()), Some(sc));
        }
    }

    #[test]
    fn flash_crowd_shocks_every_pair_in_one_shared_window() {
        let e = env();
        let plan = FaultPlan::expand(FaultScenario::FlashCrowd, 7, &e);
        assert_eq!(plan.len(), 2 * e.pairs as usize);
        let first = plan.faults()[0];
        let mut shocked = std::collections::BTreeSet::new();
        let mut slowed = std::collections::BTreeSet::new();
        for f in plan.faults() {
            assert_eq!((f.start_ns, f.end_ns), (first.start_ns, first.end_ns));
            assert!(f.end_ns < e.horizon_ns);
            match f.kind {
                FaultKind::RateShock { pair, factor_x1000 } => {
                    assert!((4000..=6000).contains(&factor_x1000));
                    shocked.insert(pair);
                }
                FaultKind::ConsumerSlowdown { pair, factor_x1000 } => {
                    assert!((30000..=50000).contains(&factor_x1000));
                    slowed.insert(pair);
                }
                other => panic!("flash crowd = shock + slowdown, got {other:?}"),
            }
        }
        assert_eq!(shocked.len(), e.pairs as usize, "every producer surges");
        assert_eq!(slowed.len(), e.pairs as usize, "every consumer degrades");
        assert_eq!(
            plan,
            FaultPlan::expand(FaultScenario::FlashCrowd, 7, &e),
            "deterministic per seed"
        );
    }

    #[test]
    fn cascading_squeeze_windows_overlap_in_waves() {
        let e = env();
        let plan = FaultPlan::expand(FaultScenario::CascadingSqueeze, 7, &e);
        assert_eq!(plan.len(), 3);
        for w in plan.faults().windows(2) {
            assert!(
                w[1].start_ns < w[0].end_ns,
                "each wave must land before the previous recovers"
            );
        }
        for f in plan.faults() {
            match f.kind {
                FaultKind::PoolSqueeze { units } => {
                    assert!((25..=40).contains(&(units as u64 * 100 / e.pool_total)));
                }
                other => panic!("cascading squeeze emits pool squeezes only, got {other:?}"),
            }
        }
    }

    #[test]
    fn rate_shock_compresses_without_losing_items() {
        let plan = FaultPlan::new(vec![Fault {
            id: 0,
            start_ns: 100,
            end_ns: 200,
            kind: FaultKind::RateShock {
                pair: 0,
                factor_x1000: 4000,
            },
        }]);
        let mut times: Vec<SimTime> = [50, 100, 140, 199, 250]
            .iter()
            .map(|&n| SimTime::from_nanos(n))
            .collect();
        plan.apply_workload_faults(0, &mut times, SimTime::from_nanos(1000));
        let ns: Vec<u64> = times.iter().map(|t| t.as_nanos()).collect();
        assert_eq!(ns, vec![50, 100, 110, 124, 250]);
        // Other pairs untouched.
        let mut other = vec![SimTime::from_nanos(150)];
        plan.apply_workload_faults(1, &mut other, SimTime::from_nanos(1000));
        assert_eq!(other, vec![SimTime::from_nanos(150)]);
    }

    #[test]
    fn stall_defers_window_to_release_point() {
        let plan = FaultPlan::new(vec![Fault {
            id: 0,
            start_ns: 100,
            end_ns: 300,
            kind: FaultKind::ProducerStall { pair: 2 },
        }]);
        let mut times: Vec<SimTime> = [50, 120, 250, 299, 310]
            .iter()
            .map(|&n| SimTime::from_nanos(n))
            .collect();
        plan.apply_workload_faults(2, &mut times, SimTime::from_nanos(1000));
        let ns: Vec<u64> = times.iter().map(|t| t.as_nanos()).collect();
        assert_eq!(ns, vec![50, 300, 300, 300, 310]);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn stall_release_clamps_inside_horizon() {
        let plan = FaultPlan::new(vec![Fault {
            id: 0,
            start_ns: 500,
            end_ns: 2_000,
            kind: FaultKind::ProducerStall { pair: 0 },
        }]);
        let mut times = vec![SimTime::from_nanos(600)];
        plan.apply_workload_faults(0, &mut times, SimTime::from_nanos(1000));
        assert_eq!(times, vec![SimTime::from_nanos(999)]);
    }
}
